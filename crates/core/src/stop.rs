//! Anytime stop control: why a session ended, a shared trip-once
//! token, and the deadline-aware check threaded through the search
//! loop, the §3.5 pre-pass, and per-query evaluation.
//!
//! The paper frames relaxation as an *anytime* search (§3.1: "the
//! process can be stopped at any time and the best configuration found
//! so far returned"). The [`StopToken`] makes that literal: any thread
//! (a SIGINT handler, a deadline check, the fault-limit guard) can trip
//! it, and the engine breaks at the next well-defined point — the top
//! of a search iteration or between per-query evaluations — and
//! returns a complete [`TuningReport`] with the best configuration
//! found so far.
//!
//! [`TuningReport`]: crate::search::TuningReport

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a tuning session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// No configuration in the pool can be relaxed further.
    Converged,
    /// The `max_iterations` budget ran out (the common case).
    #[default]
    IterationBudget,
    /// `TunerOptions::deadline_ms` elapsed.
    Deadline,
    /// The [`StopToken`] was tripped externally (e.g. SIGINT).
    Interrupted,
    /// More faults than `TunerOptions::max_faults` were tolerated.
    FaultLimit,
    /// `TunerOptions::optimizer_call_budget` ran out: the next step
    /// needed more real what-if invocations than remained.
    CallBudget,
}

impl StopReason {
    /// Short lower-case label for CLI output and logs.
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::IterationBudget => "iteration-budget",
            StopReason::Deadline => "deadline",
            StopReason::Interrupted => "interrupted",
            StopReason::FaultLimit => "fault-limit",
            StopReason::CallBudget => "call-budget",
        }
    }
}

// Token encoding: 0 = not tripped; otherwise a trip-able reason.
const TRIP_DEADLINE: u8 = 1;
const TRIP_INTERRUPTED: u8 = 2;
const TRIP_FAULT_LIMIT: u8 = 3;
const TRIP_CALL_BUDGET: u8 = 4;

/// A shared, trip-once cancellation token. Cloning shares the flag.
///
/// The first `trip` wins: later trips (a deadline firing after Ctrl-C,
/// say) do not overwrite the recorded reason. All operations are lock-
/// free and async-signal-safe, so the SIGINT handler may trip the token
/// directly.
#[derive(Debug, Clone, Default)]
pub struct StopToken(Arc<AtomicU8>);

impl StopToken {
    pub fn new() -> StopToken {
        StopToken::default()
    }

    /// Trip the token. Returns `true` if this call was the first trip.
    /// Only `Deadline`, `Interrupted`, `FaultLimit`, and `CallBudget`
    /// are trip-able; other reasons describe natural session ends and
    /// are ignored.
    pub fn trip(&self, reason: StopReason) -> bool {
        let code = match reason {
            StopReason::Deadline => TRIP_DEADLINE,
            StopReason::Interrupted => TRIP_INTERRUPTED,
            StopReason::FaultLimit => TRIP_FAULT_LIMIT,
            StopReason::CallBudget => TRIP_CALL_BUDGET,
            StopReason::Converged | StopReason::IterationBudget => return false,
        };
        self.0
            .compare_exchange(0, code, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The reason the token was tripped with, if any.
    pub fn get(&self) -> Option<StopReason> {
        match self.0.load(Ordering::Acquire) {
            0 => None,
            TRIP_DEADLINE => Some(StopReason::Deadline),
            TRIP_INTERRUPTED => Some(StopReason::Interrupted),
            TRIP_CALL_BUDGET => Some(StopReason::CallBudget),
            _ => Some(StopReason::FaultLimit),
        }
    }

    pub fn is_tripped(&self) -> bool {
        self.0.load(Ordering::Acquire) != 0
    }

    fn inner(&self) -> &Arc<AtomicU8> {
        &self.0
    }
}

/// A [`StopToken`] plus an optional wall-clock deadline. `stopped`
/// lazily converts a passed deadline into a `Deadline` trip, so every
/// caller — driver loop, scoring workers, per-query evaluation — sees
/// one consistent first-trip reason.
#[derive(Debug, Clone, Copy)]
pub struct StopCheck<'a> {
    token: &'a StopToken,
    deadline: Option<Instant>,
}

impl<'a> StopCheck<'a> {
    pub fn new(token: &'a StopToken, deadline: Option<Instant>) -> StopCheck<'a> {
        StopCheck { token, deadline }
    }

    /// The stop reason, tripping the token first if the deadline has
    /// passed. `None` means: keep working.
    pub fn stopped(&self) -> Option<StopReason> {
        if let Some(r) = self.token.get() {
            return Some(r);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.token.trip(StopReason::Deadline);
            return Some(self.token.get().unwrap_or(StopReason::Deadline));
        }
        None
    }

    pub fn is_stopped(&self) -> bool {
        self.stopped().is_some()
    }
}

// Per-signal token slots for the cooperative stop handlers. The
// handler cannot own an `Arc`, so one strong count is leaked into a
// static pointer slot per signal. Install-once: later calls for a
// different token swap the slot (the superseded count stays leaked —
// bounded by the number of install calls, one or two per process run).
#[cfg(unix)]
static SIGINT_TOKEN: AtomicUsize = AtomicUsize::new(0);
#[cfg(unix)]
static SIGTERM_TOKEN: AtomicUsize = AtomicUsize::new(0);

#[cfg(unix)]
const SIGINT_NUM: i32 = 2;
#[cfg(unix)]
const SIGTERM_NUM: i32 = 15;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Shared handler body: trip the signal's registered token and fall
/// back to the default disposition, so a *second* delivery of the same
/// signal kills the process. Async-signal-safe: two atomic operations
/// and a `signal` call.
#[cfg(unix)]
extern "C" fn on_stop_signal(signum: i32) {
    const SIG_DFL: usize = 0;
    let slot = if signum == SIGTERM_NUM {
        &SIGTERM_TOKEN
    } else {
        &SIGINT_TOKEN
    };
    let ptr = slot.load(Ordering::Acquire);
    if ptr != 0 {
        let flag = unsafe { &*(ptr as *const AtomicU8) };
        let _ = flag.compare_exchange(0, TRIP_INTERRUPTED, Ordering::AcqRel, Ordering::Acquire);
    }
    unsafe {
        signal(signum, SIG_DFL);
    }
}

#[cfg(unix)]
fn install_stop_signal(token: &StopToken, signum: i32, slot: &AtomicUsize) {
    let raw = Arc::into_raw(Arc::clone(token.inner())) as usize;
    slot.store(raw, Ordering::Release);
    unsafe {
        signal(signum, on_stop_signal as extern "C" fn(i32) as usize);
    }
}

/// Install a process-wide SIGINT handler that trips `token`, so Ctrl-C
/// ends the session cooperatively and the caller still gets a complete
/// report. A second Ctrl-C falls back to the default disposition
/// (process death) — the handler resets itself after the first trip.
///
/// Implemented with `signal(2)` directly (std already links libc; no
/// new dependency).
#[cfg(unix)]
pub fn install_sigint(token: &StopToken) {
    install_stop_signal(token, SIGINT_NUM, &SIGINT_TOKEN);
}

/// Install a process-wide SIGTERM handler that trips `token`. The serve
/// daemon uses this for graceful shutdown: a service manager's SIGTERM
/// drains every live session to a durable checkpoint before exit, and a
/// second SIGTERM (or an impatient SIGKILL) falls back to process
/// death — which the recovery scan then handles on restart.
#[cfg(unix)]
pub fn install_sigterm(token: &StopToken) {
    install_stop_signal(token, SIGTERM_NUM, &SIGTERM_TOKEN);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn first_trip_wins() {
        let t = StopToken::new();
        assert_eq!(t.get(), None);
        assert!(!t.is_tripped());
        assert!(t.trip(StopReason::Interrupted));
        assert!(!t.trip(StopReason::Deadline), "second trip must lose");
        assert_eq!(t.get(), Some(StopReason::Interrupted));
        assert!(t.is_tripped());
    }

    #[test]
    fn natural_reasons_do_not_trip() {
        let t = StopToken::new();
        assert!(!t.trip(StopReason::Converged));
        assert!(!t.trip(StopReason::IterationBudget));
        assert_eq!(t.get(), None);
    }

    #[test]
    fn clones_share_the_flag() {
        let t = StopToken::new();
        let c = t.clone();
        t.trip(StopReason::FaultLimit);
        assert_eq!(c.get(), Some(StopReason::FaultLimit));
    }

    #[test]
    fn deadline_converts_to_trip() {
        let t = StopToken::new();
        let check = StopCheck::new(&t, Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(check.stopped(), Some(StopReason::Deadline));
        assert_eq!(t.get(), Some(StopReason::Deadline));
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let t = StopToken::new();
        let check = StopCheck::new(&t, Some(Instant::now() + Duration::from_secs(3600)));
        assert!(!check.is_stopped());
        let unbounded = StopCheck::new(&t, None);
        assert!(!unbounded.is_stopped());
    }

    #[test]
    fn external_trip_beats_deadline() {
        let t = StopToken::new();
        t.trip(StopReason::Interrupted);
        let check = StopCheck::new(&t, Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(check.stopped(), Some(StopReason::Interrupted));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StopReason::Deadline.label(), "deadline");
        assert_eq!(StopReason::IterationBudget.label(), "iteration-budget");
        assert_eq!(StopReason::CallBudget.label(), "call-budget");
    }

    #[test]
    fn call_budget_trips_and_decodes() {
        let t = StopToken::new();
        assert!(t.trip(StopReason::CallBudget));
        assert_eq!(t.get(), Some(StopReason::CallBudget));
    }
}
