//! Fully random schemas and workloads — the paper's "Bench" databases
//! (Table 2 lists synthetic benchmark databases alongside TPC-H and
//! the internal DS databases).

use crate::{parse_all, WorkloadSpec};
use pdt_catalog::{ColumnSpec, ColumnType, Database, Distribution, TableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for a random benchmark database.
#[derive(Debug, Clone)]
pub struct BenchParams {
    pub name: String,
    pub tables: usize,
    pub max_columns: usize,
    pub max_rows: f64,
    pub seed: u64,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            name: "bench".into(),
            tables: 8,
            max_columns: 12,
            max_rows: 2_000_000.0,
            seed: 0xBE9C,
        }
    }
}

/// Build a random database: every table gets a serial primary key, a
/// few integer/double/string attributes, and (for non-first tables) a
/// foreign key into a random earlier table — yielding a connected join
/// graph.
pub fn bench_database(p: &BenchParams) -> Database {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut builder = Database::builder(p.name.clone());
    let mut ids = Vec::with_capacity(p.tables);
    let mut rows_of = Vec::with_capacity(p.tables);

    for t in 0..p.tables {
        let rows = 10f64.powf(rng.gen_range(3.0..p.max_rows.log10()));
        let n_cols = rng.gen_range(4..=p.max_columns);
        let mut columns = vec![ColumnSpec::new("id", ColumnType::Int, Distribution::Serial)];
        // Optional FK column into an earlier table.
        let fk_target = if t > 0 {
            Some(rng.gen_range(0..t))
        } else {
            None
        };
        if let Some(target) = fk_target {
            columns.push(ColumnSpec::new(
                format!("ref{target}"),
                ColumnType::Int,
                Distribution::UniformInt {
                    min: 0,
                    max: (rows_of[target] as i64 - 1).max(0),
                },
            ));
        }
        while columns.len() < n_cols {
            let i = columns.len();
            let choice = rng.gen_range(0..4);
            columns.push(match choice {
                0 => ColumnSpec::new(
                    format!("c{i}"),
                    ColumnType::Int,
                    Distribution::UniformInt {
                        min: 0,
                        max: rng.gen_range(10..100_000),
                    },
                ),
                1 => ColumnSpec::new(
                    format!("c{i}"),
                    ColumnType::Double,
                    Distribution::UniformDouble { min: 0.0, max: 1e6 },
                ),
                2 => ColumnSpec::new(
                    format!("c{i}"),
                    ColumnType::Int,
                    Distribution::Zipf {
                        n: rng.gen_range(100..10_000),
                        theta: 0.7,
                    },
                ),
                _ => ColumnSpec::new(
                    format!("c{i}"),
                    ColumnType::VarChar(rng.gen_range(8..40)),
                    Distribution::StringPool {
                        pool: rng.gen_range(10..5_000),
                        avg_len: 12,
                    },
                ),
            });
        }
        let spec = TableSpec {
            name: format!("t{t}"),
            rows,
            columns,
            primary_key: vec![0],
        };
        let id = spec.register(&mut builder, p.seed ^ t as u64);
        if let Some(target) = fk_target {
            builder.add_foreign_key(id, 1, ids[target], 0);
        }
        ids.push(id);
        rows_of.push(rows);
    }
    builder.build()
}

/// Generate a seeded workload over a bench database: single-table
/// selections, FK joins following the generated graph, and grouped
/// aggregations.
pub fn bench_workload(db: &Database, seed: u64, n_queries: usize) -> WorkloadSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBE);
    let mut sqls = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        sqls.push(gen_bench_query(db, &mut rng));
    }
    WorkloadSpec::new(format!("{}-w{seed}", db.name), parse_all(&sqls))
}

fn gen_bench_query(db: &Database, rng: &mut StdRng) -> String {
    let tables = db.tables();
    let start = rng.gen_range(0..tables.len());
    let mut chain = vec![start];
    // Follow FK edges to build a join chain of up to 3 tables.
    let mut current = start;
    for _ in 0..rng.gen_range(0..3) {
        let fks = &tables[current].foreign_keys;
        if fks.is_empty() {
            break;
        }
        let fk = &fks[rng.gen_range(0..fks.len())];
        let target = fk.referenced_table.0 as usize;
        if chain.contains(&target) {
            break;
        }
        chain.push(target);
        current = target;
    }

    let mut preds: Vec<String> = Vec::new();
    for w in chain.windows(2) {
        let (child, parent) = (w[0], w[1]);
        let fk = tables[child]
            .foreign_keys
            .iter()
            .find(|f| f.referenced_table.0 as usize == parent)
            .expect("chain follows fks");
        preds.push(format!(
            "{}.{} = {}.{}",
            tables[child].name,
            tables[child].column(fk.column).name,
            tables[parent].name,
            tables[parent].column(fk.referenced_column).name,
        ));
    }

    // Range predicates on random numeric columns.
    let mut numeric_cols: Vec<(usize, usize)> = Vec::new();
    for &t in &chain {
        for (ci, c) in tables[t].columns.iter().enumerate() {
            if c.ty.is_numeric() && ci > 0 {
                numeric_cols.push((t, ci));
            }
        }
    }
    let n_preds = rng.gen_range(1..=3.min(numeric_cols.len().max(1)));
    for _ in 0..n_preds {
        if numeric_cols.is_empty() {
            break;
        }
        let (t, ci) = numeric_cols[rng.gen_range(0..numeric_cols.len())];
        let stats = &tables[t].columns[ci].stats;
        let span = stats.max - stats.min;
        let v = stats.min + span * rng.gen_range(0.05..0.95);
        let op = ["<", ">", "="][rng.gen_range(0..3)];
        preds.push(format!(
            "{}.{} {op} {}",
            tables[t].name,
            tables[t].columns[ci].name,
            v.round()
        ));
    }

    let from: Vec<String> = chain.iter().map(|&t| tables[t].name.clone()).collect();
    let (t0, c0) = numeric_cols.first().copied().unwrap_or((chain[0], 0));
    let out_col = format!("{}.{}", tables[t0].name, tables[t0].columns[c0].name);
    // A single-table chain over a table with no non-key numeric columns
    // yields zero predicates; omit the WHERE clause entirely then.
    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", preds.join(" AND "))
    };

    if rng.gen_bool(0.5) {
        let agg = ["SUM", "COUNT", "MIN", "MAX"][rng.gen_range(0..4)];
        // Group by a column from the last chain table.
        let gt = *chain.last().unwrap();
        let gc = rng.gen_range(0..tables[gt].columns.len());
        let group_col = format!("{}.{}", tables[gt].name, tables[gt].columns[gc].name);
        format!(
            "SELECT {group_col}, {agg}({out_col}) FROM {}{where_clause} GROUP BY {group_col}",
            from.join(", "),
        )
    } else {
        let order = if rng.gen_bool(0.3) {
            format!(" ORDER BY {out_col}")
        } else {
            String::new()
        };
        format!(
            "SELECT {out_col} FROM {}{where_clause}{order}",
            from.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_expr::Binder;

    #[test]
    fn database_is_connected_and_deterministic() {
        let p = BenchParams::default();
        let a = bench_database(&p);
        let b = bench_database(&p);
        assert_eq!(a.tables().len(), p.tables);
        for t in 1..p.tables {
            assert!(
                !a.tables()[t].foreign_keys.is_empty(),
                "t{t} should reference an earlier table"
            );
        }
        assert_eq!(
            format!("{:?}", a.tables()[3].columns),
            format!("{:?}", b.tables()[3].columns)
        );
    }

    #[test]
    fn workloads_bind_across_seeds() {
        let db = bench_database(&BenchParams::default());
        let binder = Binder::new(&db);
        for seed in 0..10 {
            let w = bench_workload(&db, seed, 15);
            for stmt in &w.statements {
                binder
                    .bind(stmt)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n  {stmt}"));
            }
        }
    }
}
