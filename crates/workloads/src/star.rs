//! Synthetic star-schema databases ("DS1" / "DS2" in the paper's
//! Table 2) and seeded SPJG workload generators.

use crate::{parse_all, WorkloadSpec};
use pdt_catalog::{ColumnSpec, ColumnType, Database, Distribution, TableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated star schema.
#[derive(Debug, Clone)]
pub struct StarParams {
    pub name: String,
    pub fact_rows: f64,
    pub dims: usize,
    pub dim_rows: f64,
    /// Attribute columns per dimension.
    pub dim_attrs: usize,
    /// Measure columns on the fact table.
    pub measures: usize,
    pub seed: u64,
}

impl StarParams {
    /// The paper-analog "DS1": a mid-sized decision-support database.
    pub fn ds1() -> StarParams {
        StarParams {
            name: "ds1".into(),
            fact_rows: 2_000_000.0,
            dims: 6,
            dim_rows: 10_000.0,
            dim_attrs: 4,
            measures: 5,
            seed: 0xD51,
        }
    }

    /// "DS2": larger fact table, more dimensions.
    pub fn ds2() -> StarParams {
        StarParams {
            name: "ds2".into(),
            fact_rows: 8_000_000.0,
            dims: 9,
            dim_rows: 50_000.0,
            dim_attrs: 5,
            measures: 7,
            seed: 0xD52,
        }
    }
}

/// Build a star-schema database: one fact table `fact` with foreign
/// keys `fk0..fkN` and measures `m0..`, dimensions `dim0..dimN` with
/// primary key `pk` and attributes `a0..`.
pub fn star_database(p: &StarParams) -> Database {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut builder = Database::builder(p.name.clone());

    let mut dim_ids = Vec::with_capacity(p.dims);
    for d in 0..p.dims {
        let rows = p.dim_rows * rng.gen_range(0.5..2.0);
        let mut columns = vec![ColumnSpec::new("pk", ColumnType::Int, Distribution::Serial)];
        for a in 0..p.dim_attrs {
            let ndv = rng.gen_range(5..500);
            columns.push(ColumnSpec::new(
                format!("a{a}"),
                ColumnType::Int,
                Distribution::UniformInt { min: 0, max: ndv },
            ));
        }
        columns.push(ColumnSpec::new(
            "label",
            ColumnType::VarChar(24),
            Distribution::StringPool {
                pool: 1000,
                avg_len: 16,
            },
        ));
        let spec = TableSpec {
            name: format!("dim{d}"),
            rows,
            columns,
            primary_key: vec![0],
        };
        dim_ids.push((spec.register(&mut builder, p.seed), rows));
    }

    let mut fact_cols = Vec::new();
    for (d, (_, rows)) in dim_ids.iter().enumerate() {
        fact_cols.push(ColumnSpec::new(
            format!("fk{d}"),
            ColumnType::Int,
            Distribution::UniformInt {
                min: 0,
                max: *rows as i64 - 1,
            },
        ));
    }
    for m in 0..p.measures {
        let dist = if m % 2 == 0 {
            Distribution::UniformDouble {
                min: 0.0,
                max: 10_000.0,
            }
        } else {
            Distribution::Zipf {
                n: 1_000,
                theta: 0.8,
            }
        };
        let ty = if m % 2 == 0 {
            ColumnType::Double
        } else {
            ColumnType::Int
        };
        fact_cols.push(ColumnSpec::new(format!("m{m}"), ty, dist));
    }
    fact_cols.push(ColumnSpec::new(
        "ts",
        ColumnType::Date,
        Distribution::DateRange {
            min_day: 0,
            max_day: 3650,
        },
    ));
    let fact_spec = TableSpec {
        name: "fact".into(),
        rows: p.fact_rows,
        columns: fact_cols,
        primary_key: vec![],
    };
    let fact = fact_spec.register(&mut builder, p.seed);
    for (d, (dim, _)) in dim_ids.iter().enumerate() {
        builder.add_foreign_key(fact, d as u16, *dim, 0);
    }
    builder.build()
}

/// Generate a seeded SPJG workload over a star database built with
/// `params`: each query joins the fact table with 1..=4 dimensions,
/// applies range predicates on measures/attributes, and optionally
/// groups and orders.
pub fn star_workload(p: &StarParams, seed: u64, n_queries: usize) -> WorkloadSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57A2);
    let mut sqls = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        sqls.push(gen_star_query(p, &mut rng));
    }
    WorkloadSpec::new(format!("{}-w{seed}", p.name), parse_all(&sqls))
}

fn gen_star_query(p: &StarParams, rng: &mut StdRng) -> String {
    let n_dims = rng.gen_range(0..=p.dims.min(4));
    let mut dims: Vec<usize> = (0..p.dims).collect();
    // Fisher-Yates prefix shuffle for the dimension choice.
    for i in 0..n_dims {
        let j = rng.gen_range(i..dims.len());
        dims.swap(i, j);
    }
    let dims = &dims[..n_dims];

    let mut from = vec!["fact".to_string()];
    let mut preds: Vec<String> = Vec::new();
    let mut group_candidates: Vec<String> = Vec::new();
    for &d in dims {
        from.push(format!("dim{d}"));
        preds.push(format!("fact.fk{d} = dim{d}.pk"));
        let attr = rng.gen_range(0..p.dim_attrs);
        if rng.gen_bool(0.7) {
            let v = rng.gen_range(0..100);
            let op = ["=", "<", ">"][rng.gen_range(0..3)];
            preds.push(format!("dim{d}.a{attr} {op} {v}"));
        }
        group_candidates.push(format!("dim{d}.a{}", rng.gen_range(0..p.dim_attrs)));
    }
    // Fact-local predicates.
    if rng.gen_bool(0.8) {
        let lo = rng.gen_range(0..3000);
        preds.push(format!(
            "fact.ts BETWEEN {lo} AND {}",
            lo + rng.gen_range(30..700)
        ));
    }
    if rng.gen_bool(0.5) {
        let m = rng.gen_range(0..p.measures);
        preds.push(format!("fact.m{m} < {}", rng.gen_range(100..9000)));
    }

    let grouped = !group_candidates.is_empty() && rng.gen_bool(0.6);
    let measure = format!("fact.m{}", rng.gen_range(0..p.measures));
    let (select, group, order) = if grouped {
        let g = group_candidates[rng.gen_range(0..group_candidates.len())].clone();
        let agg = ["SUM", "AVG", "MIN", "COUNT"][rng.gen_range(0..4)];
        let order = if rng.gen_bool(0.4) {
            format!(" ORDER BY {g}")
        } else {
            String::new()
        };
        (
            format!("{g}, {agg}({measure})"),
            format!(" GROUP BY {g}"),
            order,
        )
    } else {
        let extra = if dims.is_empty() {
            format!("fact.m{}", (1 + rng.gen_range(0..p.measures)) % p.measures)
        } else {
            format!("dim{}.label", dims[0])
        };
        let order = if rng.gen_bool(0.3) {
            format!(" ORDER BY {measure}")
        } else {
            String::new()
        };
        (format!("{measure}, {extra}"), String::new(), order)
    };

    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", preds.join(" AND "))
    };
    format!(
        "SELECT {select} FROM {}{where_clause}{group}{order}",
        from.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_expr::Binder;

    #[test]
    fn ds1_builds_with_fact_and_dims() {
        let p = StarParams::ds1();
        let db = star_database(&p);
        assert_eq!(db.tables().len(), p.dims + 1);
        assert!(db.table_by_name("fact").is_some());
        assert_eq!(db.table_by_name("fact").unwrap().foreign_keys.len(), p.dims);
    }

    #[test]
    fn workloads_bind_across_seeds() {
        let p = StarParams::ds1();
        let db = star_database(&p);
        let binder = Binder::new(&db);
        for seed in 0..10 {
            let w = star_workload(&p, seed, 12);
            assert_eq!(w.len(), 12);
            for stmt in &w.statements {
                binder
                    .bind(stmt)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n  {stmt}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = StarParams::ds2();
        let a = star_workload(&p, 3, 5);
        let b = star_workload(&p, 3, 5);
        assert_eq!(a.statements, b.statements);
    }
}
