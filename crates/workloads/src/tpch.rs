//! A TPC-H-style database and 22-query workload.
//!
//! The schema mirrors TPC-H's eight tables with dbgen's cardinality
//! ratios at a configurable scale factor. Dates are day numbers from
//! 1992-01-01 (day 0) to 1998-12-01 (day ~2525). The 22 queries are
//! single-block SPJG approximations of the originals: nested
//! sub-queries are flattened to their SPJG skeletons, which is the
//! query class the paper's view language covers.

use crate::{parse_all, WorkloadSpec};
use pdt_catalog::{ColumnSpec, ColumnType, Database, Distribution, TableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Latest shipdate-style day number used by the generators.
pub const MAX_DAY: i64 = 2525;

fn col(name: &str, ty: ColumnType, dist: Distribution) -> ColumnSpec {
    ColumnSpec::new(name, ty, dist)
}

fn int(name: &str, min: i64, max: i64) -> ColumnSpec {
    col(name, ColumnType::Int, Distribution::UniformInt { min, max })
}

fn dbl(name: &str, min: f64, max: f64) -> ColumnSpec {
    col(
        name,
        ColumnType::Double,
        Distribution::UniformDouble { min, max },
    )
}

fn date(name: &str) -> ColumnSpec {
    col(
        name,
        ColumnType::Date,
        Distribution::DateRange {
            min_day: 0,
            max_day: MAX_DAY,
        },
    )
}

fn strpool(name: &str, pool: u64, len: u16) -> ColumnSpec {
    col(
        name,
        ColumnType::VarChar(len),
        Distribution::StringPool { pool, avg_len: len },
    )
}

fn serial(name: &str) -> ColumnSpec {
    col(name, ColumnType::Int, Distribution::Serial)
}

/// Build the TPC-H-style database at scale factor `sf` (sf = 1.0 is
/// the standard ~1 GB database).
pub fn tpch_database(sf: f64) -> Database {
    let sf = sf.max(0.001);
    let n = |base: f64| (base * sf).round().max(1.0);

    let supplier_rows = n(10_000.0);
    let part_rows = n(200_000.0);
    let customer_rows = n(150_000.0);
    let orders_rows = n(1_500_000.0);

    let tables = [
        TableSpec {
            name: "region".into(),
            rows: 5.0,
            columns: vec![serial("r_regionkey"), strpool("r_name", 5, 12)],
            primary_key: vec![0],
        },
        TableSpec {
            name: "nation".into(),
            rows: 25.0,
            columns: vec![
                serial("n_nationkey"),
                strpool("n_name", 25, 15),
                int("n_regionkey", 0, 4),
            ],
            primary_key: vec![0],
        },
        TableSpec {
            name: "supplier".into(),
            rows: supplier_rows,
            columns: vec![
                serial("s_suppkey"),
                strpool("s_name", supplier_rows as u64, 18),
                int("s_nationkey", 0, 24),
                dbl("s_acctbal", -999.99, 9999.99),
                strpool("s_comment", 10_000, 60),
            ],
            primary_key: vec![0],
        },
        TableSpec {
            name: "part".into(),
            rows: part_rows,
            columns: vec![
                serial("p_partkey"),
                strpool("p_name", 5_000, 35),
                strpool("p_mfgr", 5, 14),
                strpool("p_brand", 25, 10),
                strpool("p_type", 150, 25),
                int("p_size", 1, 50),
                strpool("p_container", 40, 10),
                dbl("p_retailprice", 900.0, 2100.0),
            ],
            primary_key: vec![0],
        },
        TableSpec {
            name: "partsupp".into(),
            rows: n(800_000.0),
            columns: vec![
                int("ps_partkey", 0, part_rows as i64 - 1),
                int("ps_suppkey", 0, supplier_rows as i64 - 1),
                int("ps_availqty", 1, 9_999),
                dbl("ps_supplycost", 1.0, 1000.0),
            ],
            primary_key: vec![0, 1],
        },
        TableSpec {
            name: "customer".into(),
            rows: customer_rows,
            columns: vec![
                serial("c_custkey"),
                strpool("c_name", customer_rows as u64, 18),
                int("c_nationkey", 0, 24),
                dbl("c_acctbal", -999.99, 9999.99),
                strpool("c_mktsegment", 5, 10),
                strpool("c_phone", 100_000, 15),
            ],
            primary_key: vec![0],
        },
        TableSpec {
            name: "orders".into(),
            rows: orders_rows,
            columns: vec![
                serial("o_orderkey"),
                int("o_custkey", 0, customer_rows as i64 - 1),
                strpool("o_orderstatus", 3, 1),
                dbl("o_totalprice", 800.0, 500_000.0),
                date("o_orderdate"),
                strpool("o_orderpriority", 5, 15),
                int("o_shippriority", 0, 1),
            ],
            primary_key: vec![0],
        },
        TableSpec {
            name: "lineitem".into(),
            rows: n(6_000_000.0),
            columns: vec![
                int("l_orderkey", 0, orders_rows as i64 - 1),
                int("l_partkey", 0, part_rows as i64 - 1),
                int("l_suppkey", 0, supplier_rows as i64 - 1),
                int("l_linenumber", 1, 7),
                int("l_quantity", 1, 50),
                dbl("l_extendedprice", 900.0, 105_000.0),
                dbl("l_discount", 0.0, 0.1),
                dbl("l_tax", 0.0, 0.08),
                strpool("l_returnflag", 3, 1),
                strpool("l_linestatus", 2, 1),
                date("l_shipdate"),
                date("l_commitdate"),
                date("l_receiptdate"),
                strpool("l_shipmode", 7, 10),
            ],
            primary_key: vec![0, 3],
        },
    ];

    let mut builder = Database::builder(format!("tpch_sf{sf}"));
    let ids: Vec<_> = tables
        .iter()
        .map(|t| t.register(&mut builder, 0xA11CE))
        .collect();
    // Foreign keys: nation->region, supplier->nation, partsupp->part,
    // partsupp->supplier, customer->nation, orders->customer,
    // lineitem->orders, lineitem->part, lineitem->supplier.
    let (region, nation, supplier, part, partsupp, customer, orders, lineitem) = (
        ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7],
    );
    builder.add_foreign_key(nation, 2, region, 0);
    builder.add_foreign_key(supplier, 2, nation, 0);
    builder.add_foreign_key(partsupp, 0, part, 0);
    builder.add_foreign_key(partsupp, 1, supplier, 0);
    builder.add_foreign_key(customer, 2, nation, 0);
    builder.add_foreign_key(orders, 1, customer, 0);
    builder.add_foreign_key(lineitem, 0, orders, 0);
    builder.add_foreign_key(lineitem, 1, part, 0);
    builder.add_foreign_key(lineitem, 2, supplier, 0);
    builder.build()
}

/// The 22 SPJG query skeletons with default (spec-like) constants.
pub fn tpch_queries() -> Vec<String> {
    tpch_queries_seeded(&mut None)
}

/// Seeded variant: every numeric constant is re-drawn, producing a
/// distinct workload with the same shapes (used for the paper's
/// "hundreds of workloads").
pub fn tpch_queries_with_seed(seed: u64) -> Vec<String> {
    tpch_queries_seeded(&mut Some(StdRng::seed_from_u64(seed)))
}

fn tpch_queries_seeded(rng: &mut Option<StdRng>) -> Vec<String> {
    // Draw a constant in [lo, hi] (default mid-range when unseeded).
    let mut c = |lo: i64, hi: i64| -> i64 {
        match rng {
            Some(r) => r.gen_range(lo..=hi),
            None => (lo + hi) / 2,
        }
    };
    let d90 = c(2200, 2400); // "recent date" cutoffs
    let dlo = c(300, 1200);
    let dhi = dlo + c(300, 700);
    let q = |s: String| s;
    vec![
        // Q1: pricing summary report.
        q(format!(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), \
             AVG(l_discount), COUNT(*) FROM lineitem WHERE l_shipdate <= {d90} \
             GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"
        )),
        // Q2: minimum-cost supplier (flattened).
        q(format!(
            "SELECT s_acctbal, s_name, n_name, p_partkey FROM part, supplier, partsupp, nation, region \
             WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND s_nationkey = n_nationkey \
             AND n_regionkey = r_regionkey AND p_size = {} AND ps_supplycost < {} \
             ORDER BY s_acctbal DESC",
            c(1, 50),
            c(100, 900),
        )),
        // Q3: shipping priority.
        q(format!(
            "SELECT l_orderkey, SUM(l_extendedprice), o_orderdate, o_shippriority \
             FROM customer, orders, lineitem \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
             AND o_orderdate < {dlo} AND l_shipdate > {dlo} \
             GROUP BY l_orderkey, o_orderdate, o_shippriority ORDER BY o_orderdate"
        )),
        // Q4: order priority checking (EXISTS flattened to a join).
        q(format!(
            "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem \
             WHERE l_orderkey = o_orderkey AND o_orderdate >= {dlo} AND o_orderdate < {dhi} \
             AND l_commitdate < l_receiptdate GROUP BY o_orderpriority ORDER BY o_orderpriority"
        )),
        // Q5: local supplier volume.
        q(format!(
            "SELECT n_name, SUM(l_extendedprice) FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey \
             AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
             AND o_orderdate >= {dlo} AND o_orderdate < {dhi} GROUP BY n_name"
        )),
        // Q6: forecasting revenue change.
        q(format!(
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
             WHERE l_shipdate >= {dlo} AND l_shipdate < {dhi} \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < {}",
            c(20, 30),
        )),
        // Q7: volume shipping (nation pair flattened).
        q(format!(
            "SELECT n_name, SUM(l_extendedprice) FROM supplier, lineitem, orders, customer, nation \
             WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey \
             AND s_nationkey = n_nationkey AND l_shipdate BETWEEN {dlo} AND {dhi} \
             GROUP BY n_name"
        )),
        // Q8: national market share skeleton.
        q(format!(
            "SELECT o_orderdate, SUM(l_extendedprice) FROM part, lineitem, orders, customer, nation, region \
             WHERE p_partkey = l_partkey AND l_orderkey = o_orderkey AND o_custkey = c_custkey \
             AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey \
             AND o_orderdate BETWEEN {dlo} AND {dhi} AND p_size < {} \
             GROUP BY o_orderdate",
            c(10, 40),
        )),
        // Q9: product type profit measure.
        q(format!(
            "SELECT n_name, SUM(l_extendedprice - ps_supplycost * l_quantity) \
             FROM part, supplier, lineitem, partsupp, nation \
             WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
             AND p_partkey = l_partkey AND s_nationkey = n_nationkey AND p_size > {} \
             GROUP BY n_name",
            c(5, 45),
        )),
        // Q10: returned item reporting.
        q(format!(
            "SELECT c_custkey, c_name, SUM(l_extendedprice), c_acctbal, n_name \
             FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND c_nationkey = n_nationkey \
             AND o_orderdate >= {dlo} AND o_orderdate < {dhi} \
             GROUP BY c_custkey, c_name, c_acctbal, n_name"
        )),
        // Q11: important stock identification.
        q(format!(
            "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) FROM partsupp, supplier, nation \
             WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND ps_availqty > {} \
             GROUP BY ps_partkey",
            c(100, 9000),
        )),
        // Q12: shipping modes and order priority.
        q(format!(
            "SELECT l_shipmode, COUNT(*) FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_commitdate < l_receiptdate \
             AND l_shipdate < l_commitdate AND l_receiptdate >= {dlo} AND l_receiptdate < {dhi} \
             GROUP BY l_shipmode ORDER BY l_shipmode"
        )),
        // Q13: customer distribution skeleton.
        q(format!(
            "SELECT c_custkey, COUNT(*) FROM customer, orders \
             WHERE c_custkey = o_custkey AND o_totalprice > {} GROUP BY c_custkey",
            c(1_000, 300_000),
        )),
        // Q14: promotion effect.
        q(format!(
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem, part \
             WHERE l_partkey = p_partkey AND l_shipdate >= {dlo} AND l_shipdate < {dhi}"
        )),
        // Q15: top supplier (view flattened).
        q(format!(
            "SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem \
             WHERE l_shipdate >= {dlo} AND l_shipdate < {dhi} GROUP BY l_suppkey"
        )),
        // Q16: parts/supplier relationship.
        q(format!(
            "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) FROM partsupp, part \
             WHERE p_partkey = ps_partkey AND p_size IN ({}, {}, {}, {}) \
             GROUP BY p_brand, p_type, p_size ORDER BY p_brand",
            c(1, 12),
            c(13, 25),
            c(26, 38),
            c(39, 50),
        )),
        // Q17: small-quantity-order revenue.
        q(format!(
            "SELECT AVG(l_extendedprice) FROM lineitem, part \
             WHERE p_partkey = l_partkey AND p_container = 'medbox' AND l_quantity < {}",
            c(3, 10),
        )),
        // Q18: large volume customer.
        q(format!(
            "SELECT c_name, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) \
             FROM customer, orders, lineitem \
             WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND o_totalprice > {} \
             GROUP BY c_name, o_orderkey, o_orderdate, o_totalprice ORDER BY o_totalprice DESC",
            c(100_000, 400_000),
        )),
        // Q19: discounted revenue.
        q(format!(
            "SELECT SUM(l_extendedprice) FROM lineitem, part \
             WHERE p_partkey = l_partkey AND l_quantity BETWEEN {} AND {} \
             AND p_size BETWEEN 1 AND {} AND l_shipmode IN ('air', 'rail')",
            c(1, 10),
            c(11, 30),
            c(5, 15),
        )),
        // Q20: potential part promotion.
        q(format!(
            "SELECT s_name, s_acctbal FROM supplier, nation, partsupp \
             WHERE s_suppkey = ps_suppkey AND s_nationkey = n_nationkey \
             AND ps_availqty > {} ORDER BY s_name",
            c(1_000, 9_000),
        )),
        // Q21: suppliers who kept orders waiting.
        q("SELECT s_name, COUNT(*) FROM supplier, lineitem, orders, nation \
             WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey \
             AND o_orderstatus = 'f' AND l_receiptdate > l_commitdate \
             AND s_nationkey = n_nationkey GROUP BY s_name".to_string()),
        // Q22: global sales opportunity skeleton.
        q(format!(
            "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer \
             WHERE c_acctbal > {} GROUP BY c_nationkey ORDER BY c_nationkey",
            c(0, 5_000),
        )),
    ]
}

/// The default 22-query workload.
pub fn tpch_workload() -> WorkloadSpec {
    WorkloadSpec::new("tpch-22", parse_all(&tpch_queries()))
}

/// A seeded workload: a random subset (of `size` queries, with
/// replacement across shapes but fresh constants) of the 22 shapes.
pub fn tpch_workload_variant(seed: u64, size: usize) -> WorkloadSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let all = tpch_queries_with_seed(rng.gen());
    let mut stmts = Vec::with_capacity(size);
    for _ in 0..size {
        let i = rng.gen_range(0..all.len());
        stmts.push(all[i].clone());
    }
    WorkloadSpec::new(format!("tpch-var-{seed}"), parse_all(&stmts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_expr::Binder;

    #[test]
    fn schema_has_eight_tables_with_ratios() {
        let db = tpch_database(0.1);
        assert_eq!(db.tables().len(), 8);
        let li = db.table_by_name("lineitem").unwrap();
        let ord = db.table_by_name("orders").unwrap();
        assert!((li.rows / ord.rows - 4.0).abs() < 0.1);
    }

    #[test]
    fn all_22_queries_parse_and_bind() {
        let db = tpch_database(0.01);
        let w = tpch_workload();
        assert_eq!(w.len(), 22);
        let binder = Binder::new(&db);
        for stmt in &w.statements {
            binder
                .bind(stmt)
                .unwrap_or_else(|e| panic!("bind failed: {e}\n  {stmt}"));
        }
    }

    #[test]
    fn variants_differ_by_seed_but_are_deterministic() {
        let a = tpch_workload_variant(7, 10);
        let b = tpch_workload_variant(7, 10);
        let c = tpch_workload_variant(8, 10);
        assert_eq!(a.statements, b.statements);
        assert_ne!(a.statements, c.statements);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn variants_bind_for_many_seeds() {
        let db = tpch_database(0.01);
        let binder = Binder::new(&db);
        for seed in 0..20 {
            let w = tpch_workload_variant(seed, 8);
            for stmt in &w.statements {
                binder
                    .bind(stmt)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n  {stmt}"));
            }
        }
    }

    #[test]
    fn scale_factor_scales_sizes() {
        let small = tpch_database(0.01);
        let big = tpch_database(0.1);
        let s = small.table_by_name("lineitem").unwrap().rows;
        let b = big.table_by_name("lineitem").unwrap().rows;
        assert!((b / s - 10.0).abs() < 0.2);
    }
}
