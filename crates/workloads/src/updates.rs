//! Mixed SELECT/UPDATE workload generation (inputs for the paper's
//! §3.6 and Figure 9 experiments).
//!
//! Mirrors the paper's setup: "we used both real workloads with
//! updates and synthetically generated ones, such as those obtained
//! with dbgen" — here, a seeded transformation that interleaves
//! UPDATE / INSERT / DELETE statements over the tables a SELECT
//! workload touches.

use crate::WorkloadSpec;
use pdt_catalog::Database;
use pdt_sql::Statement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Make a mixed workload: keeps the SELECT statements and adds
/// `round(update_ratio * len)` DML statements over the referenced
/// tables.
pub fn with_updates(
    db: &Database,
    base: &WorkloadSpec,
    update_ratio: f64,
    seed: u64,
) -> WorkloadSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bda7e5);
    let mut statements = base.statements.clone();
    let n_updates = ((base.len() as f64) * update_ratio).round().max(1.0) as usize;

    // Tables referenced by the base workload (by FROM-list names).
    let mut tables: Vec<&str> = Vec::new();
    for stmt in &base.statements {
        if let Some(s) = stmt.as_select() {
            for t in &s.from {
                if !tables.contains(&t.table.as_str()) {
                    tables.push(&t.table);
                }
            }
        }
    }
    if tables.is_empty() {
        return WorkloadSpec::new(format!("{}-upd", base.name), statements);
    }

    for _ in 0..n_updates {
        let tname = tables[rng.gen_range(0..tables.len())];
        let Some(table) = db.table_by_name(tname) else {
            continue;
        };
        // Pick a numeric non-key column to update / filter on.
        let numeric: Vec<usize> = table
            .columns
            .iter()
            .enumerate()
            .filter(|(i, c)| c.ty.is_numeric() && !table.primary_key.contains(&(*i as u16)))
            .map(|(i, _)| i)
            .collect();
        if numeric.is_empty() {
            continue;
        }
        let target = numeric[rng.gen_range(0..numeric.len())];
        let filter = numeric[rng.gen_range(0..numeric.len())];
        let fc = &table.columns[filter];
        let span = (fc.stats.max - fc.stats.min).max(1.0);
        let lo = fc.stats.min + span * rng.gen_range(0.0..0.9);
        let hi = lo + span * rng.gen_range(0.01..0.1);
        let sql = match rng.gen_range(0..4) {
            0 | 1 => format!(
                "UPDATE {tname} SET {} = {} + 1 WHERE {} BETWEEN {} AND {}",
                table.columns[target].name,
                table.columns[target].name,
                fc.name,
                lo.round(),
                hi.round(),
            ),
            2 => {
                let cols: Vec<String> = table.columns.iter().map(|c| c.name.clone()).collect();
                let vals: Vec<String> = table.columns.iter().map(|_| "0".to_string()).collect();
                format!(
                    "INSERT INTO {tname} ({}) VALUES ({})",
                    cols.join(", "),
                    vals.join(", ")
                )
            }
            _ => format!(
                "DELETE FROM {tname} WHERE {} BETWEEN {} AND {}",
                fc.name,
                lo.round(),
                hi.round(),
            ),
        };
        statements.push(
            pdt_sql::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("bad generated DML: {e}\n  {sql}")),
        );
    }

    // Interleave deterministically: Fisher-Yates with the same rng.
    for i in (1..statements.len()).rev() {
        let j = rng.gen_range(0..=i);
        statements.swap(i, j);
    }
    WorkloadSpec::new(format!("{}-upd", base.name), statements)
}

/// Count of statements by kind, for reporting.
pub fn statement_mix(w: &WorkloadSpec) -> (usize, usize, usize, usize) {
    let mut selects = 0;
    let mut updates = 0;
    let mut inserts = 0;
    let mut deletes = 0;
    for s in &w.statements {
        match s {
            Statement::Select(_) => selects += 1,
            Statement::Update(_) => updates += 1,
            Statement::Insert(_) => inserts += 1,
            Statement::Delete(_) => deletes += 1,
        }
    }
    (selects, updates, inserts, deletes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{tpch_database, tpch_workload};
    use pdt_expr::Binder;

    #[test]
    fn adds_requested_fraction_of_dml() {
        let db = tpch_database(0.01);
        let base = tpch_workload();
        let mixed = with_updates(&db, &base, 0.5, 1);
        let (selects, u, i, d) = statement_mix(&mixed);
        assert_eq!(selects, 22);
        assert!(u + i + d >= 8, "mix: {u} {i} {d}");
    }

    #[test]
    fn generated_dml_binds() {
        let db = tpch_database(0.01);
        let base = tpch_workload();
        let binder = Binder::new(&db);
        for seed in 0..5 {
            let mixed = with_updates(&db, &base, 0.4, seed);
            for stmt in &mixed.statements {
                binder
                    .bind(stmt)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n  {stmt}"));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let db = tpch_database(0.01);
        let base = tpch_workload();
        let a = with_updates(&db, &base, 0.3, 9);
        let b = with_updates(&db, &base, 0.3, 9);
        assert_eq!(a.statements, b.statements);
    }
}
