//! # pdt-workloads — benchmark databases and workloads
//!
//! The experimental corpus of the paper, rebuilt synthetically (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * [`tpch`] — a TPC-H-style schema at any scale factor with a
//!   22-query SPJG workload (nested sub-queries flattened to their
//!   SPJG skeletons) plus seeded workload variants;
//! * [`star`] — synthetic star-schema databases (the paper's internal
//!   "DS1"/"DS2" databases) with seeded SPJG workload generators;
//! * [`bench`] — fully random schemas and workloads (the paper's
//!   "Bench" databases);
//! * [`updates`] — converts SELECT workloads into mixed
//!   SELECT/UPDATE/INSERT/DELETE workloads (the paper's §3.6 and
//!   Fig. 9 inputs).
//!
//! Everything is deterministic given a seed.

pub mod bench;
pub mod star;
pub mod tpch;
pub mod updates;

use pdt_catalog::Database;
use pdt_sql::Statement;

/// A named workload over a database.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub name: String,
    pub statements: Vec<Statement>,
}

impl WorkloadSpec {
    pub fn new(name: impl Into<String>, statements: Vec<Statement>) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            statements,
        }
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Number of DML statements in the workload.
    pub fn update_count(&self) -> usize {
        self.statements.iter().filter(|s| s.is_dml()).count()
    }
}

/// A database together with a family of workloads (one corpus entry of
/// the paper's Table 2).
pub struct Corpus {
    pub db: Database,
    pub workloads: Vec<WorkloadSpec>,
}

/// Parse a list of SQL strings into statements, panicking with the
/// offending text on error (the corpus is static, so a parse failure is
/// a bug in this crate).
pub(crate) fn parse_all(sqls: &[String]) -> Vec<Statement> {
    sqls.iter()
        .map(|s| {
            pdt_sql::parse_statement(s).unwrap_or_else(|e| panic!("bad generated SQL: {e}\n  {s}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spec_counts_updates() {
        let stmts = parse_all(&[
            "SELECT r_name FROM region".to_string(),
            "DELETE FROM region WHERE r_regionkey = 1".to_string(),
        ]);
        // Use a throwaway db-independent parse: region table is only
        // resolved at bind time, so parsing is enough here.
        let w = WorkloadSpec::new("w", stmts);
        assert_eq!(w.len(), 2);
        assert_eq!(w.update_count(), 1);
        assert!(!w.is_empty());
    }
}
