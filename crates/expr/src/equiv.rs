//! Column-equivalence classes induced by equi-join predicates.
//!
//! View matching and view merging compare predicates "modulo column
//! equivalence" (paper §3.1.2): if `R.x = S.y` holds in a query, a
//! predicate on `R.x` matches one on `S.y`. This module is a small
//! union-find keyed by [`ColumnId`].

use pdt_catalog::ColumnId;
use std::collections::HashMap;

/// Union-find over columns.
#[derive(Debug, Clone, Default)]
pub struct ColumnEquivalences {
    parent: HashMap<ColumnId, ColumnId>,
}

impl ColumnEquivalences {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of equated column pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ColumnId, ColumnId)>) -> Self {
        let mut eq = Self::new();
        for (a, b) in pairs {
            eq.union(a, b);
        }
        eq
    }

    fn find(&mut self, c: ColumnId) -> ColumnId {
        let p = *self.parent.get(&c).unwrap_or(&c);
        if p == c {
            return c;
        }
        let root = self.find(p);
        self.parent.insert(c, root);
        root
    }

    /// Find without path compression (usable through `&self`).
    fn find_ro(&self, mut c: ColumnId) -> ColumnId {
        while let Some(&p) = self.parent.get(&c) {
            if p == c {
                break;
            }
            c = p;
        }
        c
    }

    /// Declare `a = b`.
    pub fn union(&mut self, a: ColumnId, b: ColumnId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Keep the smaller id as the canonical representative for
            // deterministic output.
            let (root, child) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(child, root);
        }
    }

    /// Canonical representative of `c`'s class.
    pub fn canon(&self, c: ColumnId) -> ColumnId {
        self.find_ro(c)
    }

    /// True if `a` and `b` are known to be equal.
    pub fn equivalent(&self, a: ColumnId, b: ColumnId) -> bool {
        self.find_ro(a) == self.find_ro(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::TableId;

    fn cid(t: u32, c: u16) -> ColumnId {
        ColumnId::new(TableId(t), c)
    }

    #[test]
    fn transitive_closure() {
        // R.x = S.y AND S.y = T.z (paper's Section 1 example).
        let eq = ColumnEquivalences::from_pairs([(cid(0, 0), cid(1, 0)), (cid(1, 0), cid(2, 0))]);
        assert!(eq.equivalent(cid(0, 0), cid(2, 0)));
        assert!(!eq.equivalent(cid(0, 0), cid(0, 1)));
    }

    #[test]
    fn canon_is_stable_minimum() {
        let eq = ColumnEquivalences::from_pairs([(cid(2, 3), cid(1, 1)), (cid(1, 1), cid(0, 7))]);
        assert_eq!(eq.canon(cid(2, 3)), cid(0, 7));
        assert_eq!(eq.canon(cid(0, 7)), cid(0, 7));
    }

    #[test]
    fn singleton_is_its_own_canon() {
        let eq = ColumnEquivalences::new();
        assert_eq!(eq.canon(cid(5, 5)), cid(5, 5));
    }
}
