//! Name resolution: unbound `pdt-sql` AST -> bound expressions.
//!
//! The binder enforces the SPJG restrictions the paper assumes:
//! single-block queries, group-by and order-by over plain columns, and
//! no self-joins (a table appears at most once in FROM — our
//! [`pdt_catalog::ColumnId`] identity is per table occurrence).

use crate::classify::{classify_conjuncts, ClassifiedPredicates};
use crate::scalar::{AggCall, AggFunc, ArithOp, CmpOp, PredExpr, ScalarExpr};
use pdt_catalog::{ColumnId, Database, TableId, Value};
use pdt_sql::{AstExpr, BinOp, OrderDir, SelectStmt, Statement, UnOp};
use std::collections::HashMap;
use std::fmt;

/// A binding failure.
#[derive(Debug, Clone, PartialEq)]
pub struct BindError(pub String);

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bind error: {}", self.0)
    }
}

impl std::error::Error for BindError {}

type Result<T> = std::result::Result<T, BindError>;

/// A bound SPJG query.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSelect {
    /// Tables in FROM order.
    pub tables: Vec<TableId>,
    /// Bound projection expressions (may contain aggregates).
    pub projections: Vec<ScalarExpr>,
    /// Bound WHERE predicate, if any.
    pub predicate: Option<PredExpr>,
    /// GROUP BY columns (plain columns only).
    pub group_by: Vec<ColumnId>,
    /// ORDER BY columns with descending flags.
    pub order_by: Vec<(ColumnId, bool)>,
    /// Optional TOP row limit.
    pub top: Option<u64>,
}

impl BoundSelect {
    /// Classify the WHERE clause conjuncts (join / range / other).
    pub fn classified(&self, db: &Database) -> ClassifiedPredicates {
        match &self.predicate {
            Some(p) => classify_conjuncts(db, p.clone().conjuncts()),
            None => ClassifiedPredicates::default(),
        }
    }

    /// True if any projection contains an aggregate (implicit global
    /// group-by when `group_by` is empty).
    pub fn has_aggregates(&self) -> bool {
        self.projections.iter().any(ScalarExpr::contains_aggregate)
    }
}

/// A bound UPDATE.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundUpdate {
    pub table: TableId,
    /// `(column ordinal, new value expression)`.
    pub assignments: Vec<(u16, ScalarExpr)>,
    pub predicate: Option<PredExpr>,
}

/// A bound INSERT (single row).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundInsert {
    pub table: TableId,
    pub columns: Vec<u16>,
}

/// A bound DELETE.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundDelete {
    pub table: TableId,
    pub predicate: Option<PredExpr>,
}

/// Any bound statement.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundStatement {
    Select(BoundSelect),
    Update(BoundUpdate),
    Insert(BoundInsert),
    Delete(BoundDelete),
}

impl BoundStatement {
    pub fn as_select(&self) -> Option<&BoundSelect> {
        match self {
            BoundStatement::Select(s) => Some(s),
            _ => None,
        }
    }

    /// Table written by a DML statement.
    pub fn written_table(&self) -> Option<TableId> {
        match self {
            BoundStatement::Select(_) => None,
            BoundStatement::Update(u) => Some(u.table),
            BoundStatement::Insert(i) => Some(i.table),
            BoundStatement::Delete(d) => Some(d.table),
        }
    }
}

/// The binder: resolves names against a database.
pub struct Binder<'a> {
    db: &'a Database,
}

impl<'a> Binder<'a> {
    pub fn new(db: &'a Database) -> Binder<'a> {
        Binder { db }
    }

    /// Bind any statement.
    pub fn bind(&self, stmt: &Statement) -> Result<BoundStatement> {
        match stmt {
            Statement::Select(s) => Ok(BoundStatement::Select(self.bind_select(s)?)),
            Statement::Update(u) => {
                let table = self.table_named(&u.table)?;
                let scope = Scope::single(self.db, table);
                let mut assignments = Vec::with_capacity(u.assignments.len());
                for (col, value) in &u.assignments {
                    let ordinal = self
                        .db
                        .table(table)
                        .column_ordinal(col)
                        .ok_or_else(|| BindError(format!("unknown column {col} in SET")))?;
                    assignments.push((ordinal, scope.bind_scalar(value)?));
                }
                let predicate = u
                    .predicate
                    .as_ref()
                    .map(|p| scope.bind_pred(p))
                    .transpose()?;
                Ok(BoundStatement::Update(BoundUpdate {
                    table,
                    assignments,
                    predicate,
                }))
            }
            Statement::Insert(i) => {
                let table = self.table_named(&i.table)?;
                let t = self.db.table(table);
                let columns = if i.columns.is_empty() {
                    (0..t.columns.len() as u16).collect()
                } else {
                    i.columns
                        .iter()
                        .map(|c| {
                            t.column_ordinal(c)
                                .ok_or_else(|| BindError(format!("unknown column {c} in INSERT")))
                        })
                        .collect::<Result<Vec<_>>>()?
                };
                Ok(BoundStatement::Insert(BoundInsert { table, columns }))
            }
            Statement::Delete(d) => {
                let table = self.table_named(&d.table)?;
                let scope = Scope::single(self.db, table);
                let predicate = d
                    .predicate
                    .as_ref()
                    .map(|p| scope.bind_pred(p))
                    .transpose()?;
                Ok(BoundStatement::Delete(BoundDelete { table, predicate }))
            }
        }
    }

    /// Bind a SELECT.
    pub fn bind_select(&self, s: &SelectStmt) -> Result<BoundSelect> {
        if s.from.is_empty() {
            return Err(BindError("SELECT without FROM".into()));
        }
        let mut bindings: HashMap<String, TableId> = HashMap::with_capacity(s.from.len());
        let mut tables = Vec::with_capacity(s.from.len());
        for table_ref in &s.from {
            let id = self.table_named(&table_ref.table)?;
            if tables.contains(&id) {
                return Err(BindError(format!(
                    "table {} appears twice in FROM (self-joins are outside the supported SPJG subset)",
                    table_ref.table
                )));
            }
            let key = table_ref.binding_name().to_ascii_lowercase();
            if bindings.insert(key, id).is_some() {
                return Err(BindError(format!(
                    "duplicate binding name {}",
                    table_ref.binding_name()
                )));
            }
            tables.push(id);
        }
        let scope = Scope {
            db: self.db,
            bindings,
            tables: tables.clone(),
        };

        let projections = s
            .projections
            .iter()
            .map(|item| scope.bind_scalar(&item.expr))
            .collect::<Result<Vec<_>>>()?;

        let predicate = s
            .predicate
            .as_ref()
            .map(|p| scope.bind_pred(p))
            .transpose()?;

        let group_by = s
            .group_by
            .iter()
            .map(|g| scope.bind_plain_column(g, "GROUP BY"))
            .collect::<Result<Vec<_>>>()?;

        let order_by = s
            .order_by
            .iter()
            .map(|(e, dir)| {
                Ok((
                    scope.bind_plain_column(e, "ORDER BY")?,
                    *dir == OrderDir::Desc,
                ))
            })
            .collect::<Result<Vec<_>>>()?;

        Ok(BoundSelect {
            tables,
            projections,
            predicate,
            group_by,
            order_by,
            top: s.top,
        })
    }

    fn table_named(&self, name: &str) -> Result<TableId> {
        self.db
            .table_by_name(name)
            .map(|t| t.id)
            .ok_or_else(|| BindError(format!("unknown table {name}")))
    }
}

/// Name scope for one statement.
struct Scope<'a> {
    db: &'a Database,
    bindings: HashMap<String, TableId>,
    tables: Vec<TableId>,
}

impl<'a> Scope<'a> {
    fn single(db: &'a Database, table: TableId) -> Scope<'a> {
        let name = db.table(table).name.to_ascii_lowercase();
        Scope {
            db,
            bindings: HashMap::from([(name, table)]),
            tables: vec![table],
        }
    }

    fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<ColumnId> {
        match qualifier {
            Some(q) => {
                let table = self
                    .bindings
                    .get(&q.to_ascii_lowercase())
                    .copied()
                    .ok_or_else(|| BindError(format!("unknown table alias {q}")))?;
                let ordinal = self
                    .db
                    .table(table)
                    .column_ordinal(name)
                    .ok_or_else(|| BindError(format!("unknown column {q}.{name}")))?;
                Ok(ColumnId::new(table, ordinal))
            }
            None => {
                let mut found = None;
                for &table in &self.tables {
                    if let Some(ordinal) = self.db.table(table).column_ordinal(name) {
                        if found.is_some() {
                            return Err(BindError(format!("ambiguous column {name}")));
                        }
                        found = Some(ColumnId::new(table, ordinal));
                    }
                }
                found.ok_or_else(|| BindError(format!("unknown column {name}")))
            }
        }
    }

    fn bind_scalar(&self, e: &AstExpr) -> Result<ScalarExpr> {
        match e {
            AstExpr::Column { qualifier, name } => Ok(ScalarExpr::Column(
                self.resolve_column(qualifier.as_deref(), name)?,
            )),
            AstExpr::IntLit(v) => Ok(ScalarExpr::Literal(Value::Int(*v))),
            AstExpr::FloatLit(v) => Ok(ScalarExpr::Literal(Value::Double(*v))),
            AstExpr::StrLit(s) => Ok(ScalarExpr::Literal(Value::Str(s.clone()))),
            AstExpr::Null => Ok(ScalarExpr::Literal(Value::Null)),
            AstExpr::Binary { op, left, right } => {
                let arith = match op {
                    BinOp::Add => ArithOp::Add,
                    BinOp::Sub => ArithOp::Sub,
                    BinOp::Mul => ArithOp::Mul,
                    BinOp::Div => ArithOp::Div,
                    BinOp::Mod => ArithOp::Mod,
                    other => {
                        return Err(BindError(format!(
                            "boolean operator {} in scalar context",
                            other.as_str()
                        )))
                    }
                };
                Ok(ScalarExpr::Arith {
                    op: arith,
                    left: Box::new(self.bind_scalar(left)?),
                    right: Box::new(self.bind_scalar(right)?),
                })
            }
            AstExpr::Unary {
                op: UnOp::Neg,
                expr,
            } => Ok(ScalarExpr::Neg(Box::new(self.bind_scalar(expr)?))),
            AstExpr::Unary { op, .. } => Err(BindError(format!(
                "operator {op:?} not valid in scalar context"
            ))),
            AstExpr::Agg {
                func,
                arg,
                distinct,
            } => {
                let func = match func {
                    pdt_sql::AggFunc::Count => AggFunc::Count,
                    pdt_sql::AggFunc::Sum => AggFunc::Sum,
                    pdt_sql::AggFunc::Avg => AggFunc::Avg,
                    pdt_sql::AggFunc::Min => AggFunc::Min,
                    pdt_sql::AggFunc::Max => AggFunc::Max,
                };
                let arg = arg.as_ref().map(|a| self.bind_scalar(a)).transpose()?;
                Ok(ScalarExpr::Agg(Box::new(AggCall {
                    func,
                    arg,
                    distinct: *distinct,
                })))
            }
            AstExpr::Between { .. } | AstExpr::InList { .. } | AstExpr::Like { .. } => {
                Err(BindError("predicate expression in scalar context".into()))
            }
        }
    }

    fn bind_pred(&self, e: &AstExpr) -> Result<PredExpr> {
        match e {
            AstExpr::Binary { op, left, right } => match op {
                BinOp::And => Ok(PredExpr::And(vec![
                    self.bind_pred(left)?,
                    self.bind_pred(right)?,
                ])),
                BinOp::Or => Ok(PredExpr::Or(vec![
                    self.bind_pred(left)?,
                    self.bind_pred(right)?,
                ])),
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                    let cmp = match op {
                        BinOp::Eq => CmpOp::Eq,
                        BinOp::NotEq => CmpOp::NotEq,
                        BinOp::Lt => CmpOp::Lt,
                        BinOp::LtEq => CmpOp::LtEq,
                        BinOp::Gt => CmpOp::Gt,
                        _ => CmpOp::GtEq,
                    };
                    Ok(PredExpr::Cmp {
                        op: cmp,
                        left: self.bind_scalar(left)?,
                        right: self.bind_scalar(right)?,
                    })
                }
                other => Err(BindError(format!(
                    "arithmetic operator {} in boolean context",
                    other.as_str()
                ))),
            },
            AstExpr::Unary {
                op: UnOp::Not,
                expr,
            } => Ok(PredExpr::Not(Box::new(self.bind_pred(expr)?))),
            AstExpr::Unary {
                op: UnOp::IsNull,
                expr,
            } => Ok(PredExpr::IsNull {
                expr: self.bind_scalar(expr)?,
                negated: false,
            }),
            AstExpr::Unary {
                op: UnOp::IsNotNull,
                expr,
            } => Ok(PredExpr::IsNull {
                expr: self.bind_scalar(expr)?,
                negated: true,
            }),
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let scalar = self.bind_scalar(expr)?;
                let lo = PredExpr::Cmp {
                    op: CmpOp::GtEq,
                    left: scalar.clone(),
                    right: self.bind_scalar(low)?,
                };
                let hi = PredExpr::Cmp {
                    op: CmpOp::LtEq,
                    left: scalar,
                    right: self.bind_scalar(high)?,
                };
                let both = PredExpr::And(vec![lo, hi]);
                Ok(if *negated {
                    PredExpr::Not(Box::new(both))
                } else {
                    both
                })
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let scalar = self.bind_scalar(expr)?;
                let values = list
                    .iter()
                    .map(|v| match self.bind_scalar(v)? {
                        ScalarExpr::Literal(val) => Ok(val),
                        other => Err(BindError(format!(
                            "IN list items must be literals, got {other:?}"
                        ))),
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(PredExpr::InList {
                    expr: scalar,
                    list: values,
                    negated: *negated,
                })
            }
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => Ok(PredExpr::Like {
                expr: self.bind_scalar(expr)?,
                pattern: pattern.clone(),
                negated: *negated,
            }),
            other => Err(BindError(format!("expression {other} is not a predicate"))),
        }
    }

    fn bind_plain_column(&self, e: &AstExpr, clause: &str) -> Result<ColumnId> {
        match e {
            AstExpr::Column { qualifier, name } => self.resolve_column(qualifier.as_deref(), name),
            other => Err(BindError(format!(
                "{clause} supports plain columns only, got {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::{ColumnStats, ColumnType};
    use pdt_sql::parse_statement;

    fn test_db() -> Database {
        let mut b = Database::builder("t");
        let mk = |name: &str| pdt_catalog::Column {
            name: name.into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(100.0, 0.0, 100.0, 4.0),
        };
        b.add_table("r", 1000.0, vec![mk("a"), mk("b"), mk("x")], vec![0]);
        b.add_table("s", 500.0, vec![mk("y"), mk("c")], vec![0]);
        b.build()
    }

    fn bind(sql: &str) -> Result<BoundStatement> {
        let db = test_db();
        let stmt = parse_statement(sql).unwrap();
        Binder::new(&db).bind(&stmt)
    }

    #[test]
    fn binds_join_query() {
        let b = bind("SELECT r.a, s.c FROM r, s WHERE r.x = s.y AND r.a < 10").unwrap();
        let s = b.as_select().unwrap();
        assert_eq!(s.tables.len(), 2);
        assert_eq!(s.projections.len(), 2);
        let db = test_db();
        let c = s.classified(&db);
        assert_eq!(c.joins.len(), 1);
        assert_eq!(c.ranges.len(), 1);
    }

    #[test]
    fn resolves_unqualified_unique_columns() {
        let b = bind("SELECT a FROM r WHERE b < 3").unwrap();
        assert!(b.as_select().is_some());
    }

    #[test]
    fn rejects_ambiguous_and_unknown() {
        // `a` is only in r, but both r and s: make ambiguous via a
        // column that exists in both? None do, so test unknown instead.
        assert!(bind("SELECT nosuch FROM r").is_err());
        assert!(bind("SELECT r.a FROM nosuch").is_err());
        assert!(bind("SELECT q.a FROM r WHERE q.a = 1").is_err());
    }

    #[test]
    fn rejects_self_join() {
        let err = bind("SELECT r.a FROM r, r").unwrap_err();
        assert!(err.0.contains("self-join"), "{err}");
    }

    #[test]
    fn binds_aliases() {
        let b = bind("SELECT t1.a FROM r AS t1 WHERE t1.b < 5").unwrap();
        assert!(b.as_select().is_some());
    }

    #[test]
    fn between_becomes_two_conjuncts() {
        let db = test_db();
        let stmt = parse_statement("SELECT r.a FROM r WHERE r.a BETWEEN 5 AND 20").unwrap();
        let bound = Binder::new(&db).bind(&stmt).unwrap();
        let s = bound.as_select().unwrap();
        let c = s.classified(&db);
        assert_eq!(c.ranges.len(), 1);
        let sel = c.ranges[0].selectivity(&db);
        assert!((sel - 0.15).abs() < 1e-9, "sel={sel}");
    }

    #[test]
    fn binds_update_assignments() {
        let b = bind("UPDATE r SET a = b + 1 WHERE a < 10").unwrap();
        match b {
            BoundStatement::Update(u) => {
                assert_eq!(u.assignments.len(), 1);
                assert_eq!(u.assignments[0].0, 0);
                assert!(u.predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn binds_insert_default_columns() {
        let b = bind("INSERT INTO r (a, b) VALUES (1, 2)").unwrap();
        match b {
            BoundStatement::Insert(i) => assert_eq!(i.columns, vec![0, 1]),
            other => panic!("{other:?}"),
        }
        let all = bind("INSERT INTO s VALUES (1, 2)").unwrap();
        match all {
            BoundStatement::Insert(i) => assert_eq!(i.columns.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_by_requires_plain_columns() {
        assert!(bind("SELECT r.a FROM r GROUP BY r.a + 1").is_err());
        assert!(bind("SELECT r.a, COUNT(*) FROM r GROUP BY r.a").is_ok());
    }

    #[test]
    fn aggregates_bind_in_projections() {
        let b = bind("SELECT SUM(r.a), COUNT(*) FROM r").unwrap();
        let s = b.as_select().unwrap();
        assert!(s.has_aggregates());
        assert!(s.group_by.is_empty());
    }

    #[test]
    fn written_table_for_dml() {
        let db = test_db();
        let b = bind("DELETE FROM s WHERE s.c = 1").unwrap();
        assert_eq!(b.written_table(), Some(db.table_by_name("s").unwrap().id));
    }
}
