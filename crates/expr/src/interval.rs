//! One-dimensional intervals over the histogram sort-key domain.
//!
//! Range predicates on a column are normalized into an [`Interval`];
//! conjunctions intersect intervals, and the view-merging
//! transformation (paper §3.1.2) takes their union ("RM combines
//! same-column range predicates").

use pdt_catalog::SortKey;
use std::fmt;

/// An endpoint of an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    Unbounded,
    Inclusive(SortKey),
    Exclusive(SortKey),
}

impl Bound {
    pub fn value(self) -> Option<SortKey> {
        match self {
            Bound::Unbounded => None,
            Bound::Inclusive(v) | Bound::Exclusive(v) => Some(v),
        }
    }

    /// As the `(value, inclusive)` pair the stats layer consumes.
    pub fn as_stats_bound(self) -> Option<(SortKey, bool)> {
        match self {
            Bound::Unbounded => None,
            Bound::Inclusive(v) => Some((v, true)),
            Bound::Exclusive(v) => Some((v, false)),
        }
    }
}

/// A (possibly unbounded, possibly empty) interval `lo .. hi`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: Bound,
    pub hi: Bound,
}

impl Interval {
    pub const FULL: Interval = Interval {
        lo: Bound::Unbounded,
        hi: Bound::Unbounded,
    };

    /// The point interval `[v, v]` (an equality predicate).
    pub fn point(v: SortKey) -> Interval {
        Interval {
            lo: Bound::Inclusive(v),
            hi: Bound::Inclusive(v),
        }
    }

    /// `col >= v` / `col > v`.
    pub fn at_least(v: SortKey, inclusive: bool) -> Interval {
        Interval {
            lo: if inclusive {
                Bound::Inclusive(v)
            } else {
                Bound::Exclusive(v)
            },
            hi: Bound::Unbounded,
        }
    }

    /// `col <= v` / `col < v`.
    pub fn at_most(v: SortKey, inclusive: bool) -> Interval {
        Interval {
            lo: Bound::Unbounded,
            hi: if inclusive {
                Bound::Inclusive(v)
            } else {
                Bound::Exclusive(v)
            },
        }
    }

    /// True if the interval is a single point (equality predicate).
    pub fn is_point(&self) -> bool {
        match (self.lo, self.hi) {
            (Bound::Inclusive(a), Bound::Inclusive(b)) => a == b,
            _ => false,
        }
    }

    /// True if no value satisfies the interval.
    pub fn is_empty(&self) -> bool {
        match (self.lo.value(), self.hi.value()) {
            (Some(lo), Some(hi)) => {
                lo > hi
                    || (lo == hi
                        && (matches!(self.lo, Bound::Exclusive(_))
                            || matches!(self.hi, Bound::Exclusive(_))))
            }
            _ => false,
        }
    }

    /// True if both endpoints are unbounded.
    pub fn is_full(&self) -> bool {
        matches!(self.lo, Bound::Unbounded) && matches!(self.hi, Bound::Unbounded)
    }

    /// Intersection (conjunction of two range predicates on a column).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: tighter_lo(self.lo, other.lo),
            hi: tighter_hi(self.hi, other.hi),
        }
    }

    /// Convex hull (the view-merge "combine" of two range predicates:
    /// the loosest interval implied by either input).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: looser_lo(self.lo, other.lo),
            hi: looser_hi(self.hi, other.hi),
        }
    }

    /// True if every value in `other` also satisfies `self`.
    pub fn contains(&self, other: &Interval) -> bool {
        self.intersect(other) == *other
    }
}

fn tighter_lo(a: Bound, b: Bound) -> Bound {
    match (a.value(), b.value()) {
        (None, _) => b,
        (_, None) => a,
        (Some(va), Some(vb)) => {
            if va > vb {
                a
            } else if vb > va {
                b
            } else if matches!(a, Bound::Exclusive(_)) {
                a
            } else {
                b
            }
        }
    }
}

fn tighter_hi(a: Bound, b: Bound) -> Bound {
    match (a.value(), b.value()) {
        (None, _) => b,
        (_, None) => a,
        (Some(va), Some(vb)) => {
            if va < vb {
                a
            } else if vb < va {
                b
            } else if matches!(a, Bound::Exclusive(_)) {
                a
            } else {
                b
            }
        }
    }
}

fn looser_lo(a: Bound, b: Bound) -> Bound {
    match (a.value(), b.value()) {
        (None, _) | (_, None) => Bound::Unbounded,
        (Some(va), Some(vb)) => {
            if va < vb {
                a
            } else if vb < va {
                b
            } else if matches!(a, Bound::Inclusive(_)) {
                a
            } else {
                b
            }
        }
    }
}

fn looser_hi(a: Bound, b: Bound) -> Bound {
    match (a.value(), b.value()) {
        (None, _) | (_, None) => Bound::Unbounded,
        (Some(va), Some(vb)) => {
            if va > vb {
                a
            } else if vb > va {
                b
            } else if matches!(a, Bound::Inclusive(_)) {
                a
            } else {
                b
            }
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Bound::Unbounded => f.write_str("(-inf")?,
            Bound::Inclusive(v) => write!(f, "[{v}")?,
            Bound::Exclusive(v) => write!(f, "({v}")?,
        }
        f.write_str(", ")?;
        match self.hi {
            Bound::Unbounded => f.write_str("+inf)"),
            Bound::Inclusive(v) => write!(f, "{v}]"),
            Bound::Exclusive(v) => write!(f, "{v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_is_point() {
        assert!(Interval::point(5.0).is_point());
        assert!(!Interval::at_least(5.0, true).is_point());
    }

    #[test]
    fn intersect_narrows() {
        // a > 5 AND a < 50 (paper's example range conjuncts).
        let i = Interval::at_least(5.0, false).intersect(&Interval::at_most(50.0, false));
        assert_eq!(i.lo, Bound::Exclusive(5.0));
        assert_eq!(i.hi, Bound::Exclusive(50.0));
        assert!(!i.is_empty());
    }

    #[test]
    fn contradiction_is_empty() {
        let i = Interval::at_least(10.0, false).intersect(&Interval::at_most(10.0, true));
        assert!(i.is_empty());
        let j = Interval::point(3.0).intersect(&Interval::point(4.0));
        assert!(j.is_empty());
    }

    #[test]
    fn hull_merges_ranges() {
        // Paper §3.1.2: merging R.a < 10 and 10 <= R.a < 20 relaxes to
        // R.a < 20.
        let a = Interval::at_most(10.0, false);
        let b = Interval::at_least(10.0, true).intersect(&Interval::at_most(20.0, false));
        let m = a.hull(&b);
        assert_eq!(m.lo, Bound::Unbounded);
        assert_eq!(m.hi, Bound::Exclusive(20.0));
    }

    #[test]
    fn hull_of_opposite_rays_is_full() {
        // Merging R.a < 10 and R.a > 5 becomes unbounded and, per the
        // paper, is dropped from the merged view entirely.
        let m = Interval::at_most(10.0, false).hull(&Interval::at_least(5.0, false));
        assert!(m.is_full());
    }

    #[test]
    fn containment() {
        let outer = Interval::at_least(0.0, true).intersect(&Interval::at_most(100.0, true));
        let inner = Interval::point(7.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(Interval::FULL.contains(&outer));
    }

    #[test]
    fn inclusive_beats_exclusive_in_hull() {
        let a = Interval::at_least(5.0, true);
        let b = Interval::at_least(5.0, false);
        assert_eq!(a.hull(&b).lo, Bound::Inclusive(5.0));
        assert_eq!(a.intersect(&b).lo, Bound::Exclusive(5.0));
    }
}
