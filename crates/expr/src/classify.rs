//! Conjunct classification: join / range / other predicates.
//!
//! This is the paper's predicate taxonomy (Section "Assumptions"):
//!
//! ```sql
//! WHERE R.x=S.y AND S.y=T.z      -- join predicates
//!   AND R.a>5 AND R.a<50 AND R.b>5  -- range predicates
//!   AND (R.a<R.b OR R.c<8) AND R.a*R.b=5 -- other predicates
//! ```
//!
//! Sargable ("range") predicates can drive index seeks; join predicates
//! drive join enumeration and column equivalences; everything else is
//! evaluated by filters and only matters for which *columns* a plan
//! must carry.

use crate::interval::Interval;
use crate::scalar::{CmpOp, PredExpr, ScalarExpr};
use pdt_catalog::{string_sort_key, ColumnId, Database, SortKey, TableId};
use std::collections::BTreeSet;

/// Default selectivity for predicates we cannot estimate from
/// statistics (System-R's classic 1/3).
pub const DEFAULT_OTHER_SELECTIVITY: f64 = 1.0 / 3.0;

/// An equi-join predicate between columns of two different tables,
/// stored with `left < right` for canonical identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinPred {
    pub left: ColumnId,
    pub right: ColumnId,
}

impl JoinPred {
    pub fn new(a: ColumnId, b: ColumnId) -> JoinPred {
        if a <= b {
            JoinPred { left: a, right: b }
        } else {
            JoinPred { left: b, right: a }
        }
    }

    /// The two joined tables.
    pub fn tables(&self) -> (TableId, TableId) {
        (self.left.table, self.right.table)
    }

    /// True if the predicate joins `a` with `b` (in either order).
    pub fn connects(&self, a: TableId, b: TableId) -> bool {
        let (ta, tb) = self.tables();
        (ta == a && tb == b) || (ta == b && tb == a)
    }
}

/// The shape of a sargable predicate on a single column.
#[derive(Debug, Clone, PartialEq)]
pub enum Sarg {
    /// A (possibly one-sided, possibly point) range.
    Range(Interval),
    /// A disjunction of equalities (`IN` list), values in the sort-key
    /// domain.
    InList(Vec<SortKey>),
    /// A `LIKE 'prefix%'` predicate, kept as its literal prefix.
    Prefix(String),
    /// A parameterized equality (`col = ?`), e.g. the inner side of an
    /// index nested-loops join, with its precomputed selectivity.
    /// Synthesized by the optimizer; never appears in view definitions.
    Param { selectivity: f64 },
}

impl Sarg {
    /// The loosest interval implied by this sarg (used by view range
    /// components and by sarg merging).
    pub fn to_interval(&self) -> Interval {
        match self {
            Sarg::Range(i) => *i,
            Sarg::InList(vals) => {
                let mut it = vals.iter();
                match it.next() {
                    None => Interval::FULL,
                    Some(first) => it.fold(Interval::point(*first), |acc, v| {
                        acc.hull(&Interval::point(*v))
                    }),
                }
            }
            Sarg::Param { .. } => Interval::FULL,
            Sarg::Prefix(p) => {
                let lo = string_sort_key(p);
                // Upper bound: replace the last byte with its successor.
                let mut bytes = p.as_bytes().to_vec();
                for i in (0..bytes.len()).rev() {
                    if bytes[i] < 0xFF {
                        bytes[i] += 1;
                        bytes.truncate(i + 1);
                        break;
                    }
                }
                let hi = string_sort_key(&String::from_utf8_lossy(&bytes));
                Interval::at_least(lo, true).intersect(&Interval::at_most(hi, false))
            }
        }
    }

    /// True if this sarg pins the column to a single value, enabling
    /// multi-column index seeks to continue past it.
    pub fn is_equality(&self) -> bool {
        match self {
            Sarg::Range(i) => i.is_point(),
            Sarg::InList(vals) => vals.len() == 1,
            Sarg::Prefix(_) => false,
            Sarg::Param { .. } => true,
        }
    }
}

/// A sargable predicate: a column together with its (merged) sarg.
#[derive(Debug, Clone, PartialEq)]
pub struct SargablePred {
    pub column: ColumnId,
    pub sarg: Sarg,
}

impl SargablePred {
    /// Estimated selectivity against the column's statistics. View
    /// columns (not resolvable through the base catalog) fall back to
    /// the default selectivity; resolve them via
    /// [`sarg_selectivity_with`] and a physical schema instead.
    pub fn selectivity(&self, db: &Database) -> f64 {
        if let Sarg::Param { selectivity } = self.sarg {
            return selectivity;
        }
        if self.column.table.is_view() {
            return DEFAULT_OTHER_SELECTIVITY;
        }
        sarg_selectivity_with(&db.column(self.column).stats, &self.sarg)
    }
}

/// Selectivity of a sarg against explicit column statistics (shared by
/// the catalog-backed and view-schema-backed paths).
pub fn sarg_selectivity_with(stats: &pdt_catalog::ColumnStats, sarg: &Sarg) -> f64 {
    match sarg {
        Sarg::Range(i) => {
            if i.is_empty() {
                0.0
            } else if i.is_point() {
                stats.eq_selectivity(i.lo.value().expect("point has value"))
            } else {
                stats.range_selectivity(i.lo.as_stats_bound(), i.hi.as_stats_bound())
            }
        }
        Sarg::InList(vals) => vals
            .iter()
            .map(|v| stats.eq_selectivity(*v))
            .sum::<f64>()
            .clamp(0.0, 1.0),
        Sarg::Prefix(_) => {
            let i = sarg.to_interval();
            stats.range_selectivity(i.lo.as_stats_bound(), i.hi.as_stats_bound())
        }
        Sarg::Param { selectivity } => *selectivity,
    }
}

/// A non-sargable ("other") predicate: kept structurally for view
/// matching/merging, with the columns it references and a heuristic
/// selectivity.
#[derive(Debug, Clone, PartialEq)]
pub struct OtherPred {
    /// Normalized predicate tree (structural identity).
    pub pred: PredExpr,
    /// Heuristic selectivity.
    pub selectivity: f64,
}

impl OtherPred {
    pub fn columns(&self) -> BTreeSet<ColumnId> {
        self.pred.columns()
    }

    pub fn tables(&self) -> BTreeSet<TableId> {
        self.pred.tables()
    }
}

/// The classification of a WHERE clause into the paper's three classes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassifiedPredicates {
    pub joins: Vec<JoinPred>,
    pub ranges: Vec<SargablePred>,
    pub others: Vec<OtherPred>,
}

impl ClassifiedPredicates {
    /// Sargable predicates restricted to one table.
    pub fn ranges_on(&self, table: TableId) -> impl Iterator<Item = &SargablePred> {
        self.ranges.iter().filter(move |r| r.column.table == table)
    }

    /// Other predicates that reference *only* the given table (these
    /// can be evaluated by a filter directly above its access path).
    pub fn others_local_to(&self, table: TableId) -> impl Iterator<Item = &OtherPred> {
        self.others.iter().filter(move |o| {
            let ts = o.tables();
            ts.len() == 1 && ts.contains(&table)
        })
    }

    /// Combined selectivity of all single-table predicates on `table`
    /// under the independence assumption.
    pub fn local_selectivity(&self, db: &Database, table: TableId) -> f64 {
        let mut sel = 1.0;
        for r in self.ranges_on(table) {
            sel *= r.selectivity(db);
        }
        for o in self.others_local_to(table) {
            sel *= o.selectivity;
        }
        sel.clamp(0.0, 1.0)
    }

    /// Column equivalences induced by the join predicates.
    pub fn equivalences(&self) -> crate::equiv::ColumnEquivalences {
        crate::equiv::ColumnEquivalences::from_pairs(self.joins.iter().map(|j| (j.left, j.right)))
    }

    /// All tables referenced by any predicate.
    pub fn tables(&self) -> BTreeSet<TableId> {
        let mut out = BTreeSet::new();
        for j in &self.joins {
            out.insert(j.left.table);
            out.insert(j.right.table);
        }
        for r in &self.ranges {
            out.insert(r.column.table);
        }
        for o in &self.others {
            out.extend(o.tables());
        }
        out
    }
}

/// Classify a list of conjuncts (see module docs). Conjuncts on the
/// same column are merged by interval intersection.
pub fn classify_conjuncts(db: &Database, conjuncts: Vec<PredExpr>) -> ClassifiedPredicates {
    let mut out = ClassifiedPredicates::default();
    for conjunct in conjuncts {
        match try_sargable(&conjunct) {
            Classified::Join(j) => {
                if !out.joins.contains(&j) {
                    out.joins.push(j);
                }
            }
            Classified::Sargable(s) => merge_sarg(&mut out.ranges, s),
            Classified::Other => {
                let selectivity = other_selectivity(db, &conjunct);
                out.others.push(OtherPred {
                    pred: conjunct.normalized(),
                    selectivity,
                });
            }
        }
    }
    out.joins.sort();
    out.ranges.sort_by_key(|r| r.column);
    out
}

enum Classified {
    Join(JoinPred),
    Sargable(SargablePred),
    Other,
}

fn try_sargable(p: &PredExpr) -> Classified {
    match p {
        PredExpr::Cmp { op, left, right } => {
            match (left.as_column(), right.as_column()) {
                (Some(a), Some(b)) if *op == CmpOp::Eq && a.table != b.table => {
                    return Classified::Join(JoinPred::new(a, b));
                }
                _ => {}
            }
            // col op literal / literal op col
            let (col, op, lit) = match (left, right) {
                (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => (*c, *op, v),
                (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => (*c, op.flipped(), v),
                _ => return Classified::Other,
            };
            if lit.is_null() {
                return Classified::Other;
            }
            let k = lit.sort_key();
            let interval = match op {
                CmpOp::Eq => Interval::point(k),
                CmpOp::Lt => Interval::at_most(k, false),
                CmpOp::LtEq => Interval::at_most(k, true),
                CmpOp::Gt => Interval::at_least(k, false),
                CmpOp::GtEq => Interval::at_least(k, true),
                CmpOp::NotEq => return Classified::Other,
            };
            Classified::Sargable(SargablePred {
                column: col,
                sarg: Sarg::Range(interval),
            })
        }
        PredExpr::InList {
            expr,
            list,
            negated: false,
        } => match expr.as_column() {
            Some(c) => {
                let mut vals: Vec<SortKey> = list.iter().map(|v| v.sort_key()).collect();
                vals.sort_by(|a, b| a.total_cmp(b));
                vals.dedup();
                Classified::Sargable(SargablePred {
                    column: c,
                    sarg: Sarg::InList(vals),
                })
            }
            None => Classified::Other,
        },
        PredExpr::Like {
            expr,
            pattern,
            negated: false,
        } => {
            let prefix: String = pattern
                .chars()
                .take_while(|c| *c != '%' && *c != '_')
                .collect();
            match (expr.as_column(), prefix.is_empty()) {
                (Some(c), false) => Classified::Sargable(SargablePred {
                    column: c,
                    sarg: Sarg::Prefix(prefix),
                }),
                _ => Classified::Other,
            }
        }
        _ => Classified::Other,
    }
}

/// Merge a new sarg into the per-column list, intersecting with any
/// existing sarg on the same column.
fn merge_sarg(ranges: &mut Vec<SargablePred>, new: SargablePred) {
    if let Some(existing) = ranges.iter_mut().find(|r| r.column == new.column) {
        existing.sarg = intersect_sargs(&existing.sarg, &new.sarg);
    } else {
        ranges.push(new);
    }
}

fn intersect_sargs(a: &Sarg, b: &Sarg) -> Sarg {
    match (a, b) {
        (Sarg::InList(vals), other) | (other, Sarg::InList(vals)) => {
            let i = other.to_interval();
            let kept: Vec<SortKey> = vals
                .iter()
                .copied()
                .filter(|v| i.contains(&Interval::point(*v)))
                .collect();
            Sarg::InList(kept)
        }
        _ => Sarg::Range(a.to_interval().intersect(&b.to_interval())),
    }
}

/// Heuristic selectivity for a non-sargable predicate.
fn other_selectivity(db: &Database, p: &PredExpr) -> f64 {
    match p {
        PredExpr::Cmp { op, left, right } => {
            // Column-to-column comparison on the same table, or
            // arbitrary arithmetic.
            match op {
                CmpOp::NotEq => {
                    // 1 - 1/ndv when one side is a column.
                    let ndv = left
                        .as_column()
                        .or_else(|| right.as_column())
                        .filter(|c| !c.table.is_view())
                        .map(|c| db.column(c).stats.ndv)
                        .unwrap_or(10.0);
                    (1.0 - 1.0 / ndv.max(1.0)).clamp(0.0, 1.0)
                }
                CmpOp::Eq => 0.1,
                _ => DEFAULT_OTHER_SELECTIVITY,
            }
        }
        PredExpr::Or(parts) => {
            // s = 1 - prod(1 - s_i), treating children independently.
            let mut keep = 1.0;
            for part in parts {
                keep *= 1.0 - other_selectivity(db, part);
            }
            (1.0 - keep).clamp(0.0, 1.0)
        }
        PredExpr::And(parts) => parts
            .iter()
            .map(|p| other_selectivity(db, p))
            .product::<f64>()
            .clamp(0.0, 1.0),
        PredExpr::Not(inner) => (1.0 - other_selectivity(db, inner)).clamp(0.0, 1.0),
        PredExpr::IsNull { expr, negated } => {
            let null_frac = expr
                .as_column()
                .filter(|c| !c.table.is_view())
                .map(|c| db.column(c).stats.null_frac)
                .unwrap_or(0.05);
            if *negated {
                1.0 - null_frac
            } else {
                null_frac
            }
        }
        PredExpr::InList { list, negated, .. } => {
            let s = (list.len() as f64 * 0.05).clamp(0.0, 0.5);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        PredExpr::Like { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::{ColumnStats, ColumnType, Value};

    fn test_db() -> Database {
        let mut b = Database::builder("t");
        let mk = |name: &str| pdt_catalog::Column {
            name: name.into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(100.0, 0.0, 100.0, 4.0),
        };
        b.add_table(
            "r",
            1000.0,
            vec![mk("a"), mk("b"), mk("c"), mk("x")],
            vec![0],
        );
        b.add_table("s", 500.0, vec![mk("y"), mk("b")], vec![0]);
        b.build()
    }

    fn cid(db: &Database, t: &str, c: &str) -> ColumnId {
        let table = db.table_by_name(t).unwrap();
        table.column_id(table.column_ordinal(c).unwrap())
    }

    fn cmp(op: CmpOp, l: ScalarExpr, r: ScalarExpr) -> PredExpr {
        PredExpr::Cmp {
            op,
            left: l,
            right: r,
        }
    }

    #[test]
    fn classifies_paper_example() {
        let db = test_db();
        let ra = cid(&db, "r", "a");
        let rb = cid(&db, "r", "b");
        let rc = cid(&db, "r", "c");
        let rx = cid(&db, "r", "x");
        let sy = cid(&db, "s", "y");
        let conjuncts = vec![
            // R.x = S.y  -> join
            cmp(CmpOp::Eq, ScalarExpr::column(rx), ScalarExpr::column(sy)),
            // R.a > 5 AND R.a < 50 -> one merged range on R.a
            cmp(
                CmpOp::Gt,
                ScalarExpr::column(ra),
                ScalarExpr::literal(Value::Int(5)),
            ),
            cmp(
                CmpOp::Lt,
                ScalarExpr::column(ra),
                ScalarExpr::literal(Value::Int(50)),
            ),
            // R.b > 5 -> range
            cmp(
                CmpOp::Gt,
                ScalarExpr::column(rb),
                ScalarExpr::literal(Value::Int(5)),
            ),
            // (R.a < R.b OR R.c < 8) -> other
            PredExpr::Or(vec![
                cmp(CmpOp::Lt, ScalarExpr::column(ra), ScalarExpr::column(rb)),
                cmp(
                    CmpOp::Lt,
                    ScalarExpr::column(rc),
                    ScalarExpr::literal(Value::Int(8)),
                ),
            ]),
            // R.a * R.b = 5 -> other
            cmp(
                CmpOp::Eq,
                ScalarExpr::Arith {
                    op: crate::scalar::ArithOp::Mul,
                    left: Box::new(ScalarExpr::column(ra)),
                    right: Box::new(ScalarExpr::column(rb)),
                },
                ScalarExpr::literal(Value::Int(5)),
            ),
        ];
        let c = classify_conjuncts(&db, conjuncts);
        assert_eq!(c.joins.len(), 1);
        assert_eq!(c.ranges.len(), 2, "{:?}", c.ranges);
        assert_eq!(c.others.len(), 2);

        // Merged interval on R.a is (5, 50).
        let ra_pred = c.ranges.iter().find(|r| r.column == ra).unwrap();
        match &ra_pred.sarg {
            Sarg::Range(i) => {
                assert_eq!(i.lo.value(), Some(5.0));
                assert_eq!(i.hi.value(), Some(50.0));
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn flipped_literal_comparison_is_sargable() {
        let db = test_db();
        let ra = cid(&db, "r", "a");
        let c = classify_conjuncts(
            &db,
            vec![cmp(
                CmpOp::Gt,
                ScalarExpr::literal(Value::Int(10)),
                ScalarExpr::column(ra),
            )],
        );
        assert_eq!(c.ranges.len(), 1);
        match &c.ranges[0].sarg {
            Sarg::Range(i) => assert_eq!(i.hi.value(), Some(10.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_table_column_equality_is_other() {
        let db = test_db();
        let ra = cid(&db, "r", "a");
        let rb = cid(&db, "r", "b");
        let c = classify_conjuncts(
            &db,
            vec![cmp(
                CmpOp::Eq,
                ScalarExpr::column(ra),
                ScalarExpr::column(rb),
            )],
        );
        assert!(c.joins.is_empty());
        assert_eq!(c.others.len(), 1);
    }

    #[test]
    fn in_list_intersects_with_range() {
        let db = test_db();
        let ra = cid(&db, "r", "a");
        let c = classify_conjuncts(
            &db,
            vec![
                PredExpr::InList {
                    expr: ScalarExpr::column(ra),
                    list: vec![Value::Int(1), Value::Int(5), Value::Int(60)],
                    negated: false,
                },
                cmp(
                    CmpOp::Lt,
                    ScalarExpr::column(ra),
                    ScalarExpr::literal(Value::Int(50)),
                ),
            ],
        );
        assert_eq!(c.ranges.len(), 1);
        match &c.ranges[0].sarg {
            Sarg::InList(vals) => assert_eq!(vals, &vec![1.0, 5.0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn selectivity_of_range() {
        let db = test_db();
        let ra = cid(&db, "r", "a");
        let p = SargablePred {
            column: ra,
            sarg: Sarg::Range(Interval::at_most(50.0, true)),
        };
        let sel = p.selectivity(&db);
        assert!((sel - 0.5).abs() < 1e-9, "sel={sel}");
    }

    #[test]
    fn local_selectivity_multiplies() {
        let db = test_db();
        let r = db.table_by_name("r").unwrap().id;
        let ra = cid(&db, "r", "a");
        let rb = cid(&db, "r", "b");
        let c = classify_conjuncts(
            &db,
            vec![
                cmp(
                    CmpOp::Lt,
                    ScalarExpr::column(ra),
                    ScalarExpr::literal(Value::Int(50)),
                ),
                cmp(
                    CmpOp::Lt,
                    ScalarExpr::column(rb),
                    ScalarExpr::literal(Value::Int(10)),
                ),
            ],
        );
        let sel = c.local_selectivity(&db, r);
        assert!((sel - 0.05).abs() < 1e-9, "sel={sel}");
    }

    #[test]
    fn like_prefix_is_sargable() {
        let db = test_db();
        let ra = cid(&db, "r", "a");
        let c = classify_conjuncts(
            &db,
            vec![PredExpr::Like {
                expr: ScalarExpr::column(ra),
                pattern: "abc%".into(),
                negated: false,
            }],
        );
        assert_eq!(c.ranges.len(), 1);
        match &c.ranges[0].sarg {
            Sarg::Prefix(p) => assert_eq!(p, "abc"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn like_without_prefix_is_other() {
        let db = test_db();
        let ra = cid(&db, "r", "a");
        let c = classify_conjuncts(
            &db,
            vec![PredExpr::Like {
                expr: ScalarExpr::column(ra),
                pattern: "%abc".into(),
                negated: false,
            }],
        );
        assert!(c.ranges.is_empty());
        assert_eq!(c.others.len(), 1);
    }

    #[test]
    fn equivalences_from_joins() {
        let db = test_db();
        let rx = cid(&db, "r", "x");
        let sy = cid(&db, "s", "y");
        let c = classify_conjuncts(
            &db,
            vec![cmp(
                CmpOp::Eq,
                ScalarExpr::column(rx),
                ScalarExpr::column(sy),
            )],
        );
        let eq = c.equivalences();
        assert!(eq.equivalent(rx, sy));
    }

    #[test]
    fn contradictory_ranges_give_zero_selectivity() {
        let db = test_db();
        let ra = cid(&db, "r", "a");
        let c = classify_conjuncts(
            &db,
            vec![
                cmp(
                    CmpOp::Gt,
                    ScalarExpr::column(ra),
                    ScalarExpr::literal(Value::Int(60)),
                ),
                cmp(
                    CmpOp::Lt,
                    ScalarExpr::column(ra),
                    ScalarExpr::literal(Value::Int(40)),
                ),
            ],
        );
        assert_eq!(c.ranges.len(), 1);
        assert_eq!(c.ranges[0].selectivity(&db), 0.0);
    }
}
