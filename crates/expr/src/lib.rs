//! # pdt-expr — bound expressions and predicate analysis
//!
//! Sits between the SQL front-end and the optimizer/physical layers:
//!
//! * [`scalar`] — bound scalar expressions ([`ScalarExpr`]) and boolean
//!   predicate trees ([`PredExpr`]) over [`pdt_catalog::ColumnId`]s;
//! * [`interval`] — one-dimensional intervals used to represent (and
//!   merge) range predicates;
//! * [`classify`] — splits a WHERE clause into the paper's three
//!   conjunct classes: **join**, **range** (sargable) and **other**
//!   predicates, and estimates their selectivities;
//! * [`bind`] — resolves an unbound `pdt-sql` AST against a catalog;
//! * [`equiv`] — union-find column-equivalence classes induced by
//!   equi-join predicates (used by view matching "modulo column
//!   equivalence").

pub mod bind;
pub mod classify;
pub mod equiv;
pub mod interval;
pub mod scalar;

pub use bind::{
    BindError, Binder, BoundDelete, BoundInsert, BoundSelect, BoundStatement, BoundUpdate,
};
pub use classify::{
    classify_conjuncts, ClassifiedPredicates, JoinPred, OtherPred, Sarg, SargablePred,
};
pub use equiv::ColumnEquivalences;
pub use interval::{Bound, Interval};
pub use scalar::{AggCall, CmpOp, PredExpr, ScalarExpr};
