//! Bound scalar expressions and predicate trees.

use pdt_catalog::{ColumnId, Database, TableId, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators in bound predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    /// The operator with its operands swapped (`a < b` -> `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
            other => other,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }
}

/// Arithmetic operators inside scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    pub fn as_str(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }

    fn is_commutative(self) -> bool {
        matches!(self, ArithOp::Add | ArithOp::Mul)
    }
}

/// Aggregate functions over bound expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn as_str(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// A bound aggregate call (`arg == None` means `COUNT(*)`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    pub arg: Option<ScalarExpr>,
    pub distinct: bool,
}

/// A bound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    Column(ColumnId),
    Literal(Value),
    Arith {
        op: ArithOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    Neg(Box<ScalarExpr>),
    Agg(Box<AggCall>),
}

impl ScalarExpr {
    pub fn column(id: ColumnId) -> ScalarExpr {
        ScalarExpr::Column(id)
    }

    pub fn literal(v: Value) -> ScalarExpr {
        ScalarExpr::Literal(v)
    }

    /// Collect every referenced base column into `out`.
    pub fn collect_columns(&self, out: &mut BTreeSet<ColumnId>) {
        match self {
            ScalarExpr::Column(c) => {
                out.insert(*c);
            }
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Arith { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            ScalarExpr::Neg(e) => e.collect_columns(out),
            ScalarExpr::Agg(call) => {
                if let Some(arg) = &call.arg {
                    arg.collect_columns(out);
                }
            }
        }
    }

    /// The set of referenced columns.
    pub fn columns(&self) -> BTreeSet<ColumnId> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    /// The set of referenced tables.
    pub fn tables(&self) -> BTreeSet<TableId> {
        self.columns().into_iter().map(|c| c.table).collect()
    }

    /// True if the expression is exactly one column reference.
    pub fn as_column(&self) -> Option<ColumnId> {
        match self {
            ScalarExpr::Column(c) => Some(*c),
            _ => None,
        }
    }

    /// True if the expression references no columns.
    pub fn is_constant(&self) -> bool {
        self.columns().is_empty()
    }

    /// True if the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            ScalarExpr::Agg(_) => true,
            ScalarExpr::Arith { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            ScalarExpr::Neg(e) => e.contains_aggregate(),
            _ => false,
        }
    }

    /// Rewrite column references through `f` (used when promoting
    /// indexes/predicates from merged views onto the merged view's
    /// column space).
    pub fn map_columns(&self, f: &mut impl FnMut(ColumnId) -> ColumnId) -> ScalarExpr {
        match self {
            ScalarExpr::Column(c) => ScalarExpr::Column(f(*c)),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.map_columns(f))),
            ScalarExpr::Agg(call) => ScalarExpr::Agg(Box::new(AggCall {
                func: call.func,
                arg: call.arg.as_ref().map(|a| a.map_columns(f)),
                distinct: call.distinct,
            })),
        }
    }

    /// Canonicalize commutative operations so that structural equality
    /// is insensitive to operand order (`a + b` == `b + a`).
    pub fn normalized(&self) -> ScalarExpr {
        match self {
            ScalarExpr::Arith { op, left, right } => {
                let l = left.normalized();
                let r = right.normalized();
                if op.is_commutative() && expr_sort_token(&r) < expr_sort_token(&l) {
                    ScalarExpr::Arith {
                        op: *op,
                        left: Box::new(r),
                        right: Box::new(l),
                    }
                } else {
                    ScalarExpr::Arith {
                        op: *op,
                        left: Box::new(l),
                        right: Box::new(r),
                    }
                }
            }
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.normalized())),
            ScalarExpr::Agg(call) => ScalarExpr::Agg(Box::new(AggCall {
                func: call.func,
                arg: call.arg.as_ref().map(|a| a.normalized()),
                distinct: call.distinct,
            })),
            other => other.clone(),
        }
    }

    /// Render with human-readable column names.
    pub fn display<'a>(&'a self, db: &'a Database) -> impl fmt::Display + 'a {
        DisplayExpr { expr: self, db }
    }
}

/// Stable ordering token used to canonicalize commutative operands.
fn expr_sort_token(e: &ScalarExpr) -> String {
    format!("{e:?}")
}

struct DisplayExpr<'a> {
    expr: &'a ScalarExpr,
    db: &'a Database,
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_scalar(self.expr, self.db, f)
    }
}

fn fmt_scalar(e: &ScalarExpr, db: &Database, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        ScalarExpr::Column(c) => f.write_str(&db.column_name(*c)),
        ScalarExpr::Literal(v) => write!(f, "{v}"),
        ScalarExpr::Arith { op, left, right } => {
            f.write_str("(")?;
            fmt_scalar(left, db, f)?;
            write!(f, " {} ", op.as_str())?;
            fmt_scalar(right, db, f)?;
            f.write_str(")")
        }
        ScalarExpr::Neg(inner) => {
            f.write_str("-")?;
            fmt_scalar(inner, db, f)
        }
        ScalarExpr::Agg(call) => {
            write!(f, "{}(", call.func.as_str())?;
            if call.distinct {
                f.write_str("DISTINCT ")?;
            }
            match &call.arg {
                Some(a) => fmt_scalar(a, db, f)?,
                None => f.write_str("*")?,
            }
            f.write_str(")")
        }
    }
}

/// A bound boolean predicate tree (pre-classification form).
#[derive(Debug, Clone, PartialEq)]
pub enum PredExpr {
    /// `left op right` over scalar expressions.
    Cmp {
        op: CmpOp,
        left: ScalarExpr,
        right: ScalarExpr,
    },
    /// `col IN (v1, ..., vk)` (values are literals).
    InList {
        expr: ScalarExpr,
        list: Vec<Value>,
        negated: bool,
    },
    /// `col LIKE 'pattern'`.
    Like {
        expr: ScalarExpr,
        pattern: String,
        negated: bool,
    },
    IsNull {
        expr: ScalarExpr,
        negated: bool,
    },
    And(Vec<PredExpr>),
    Or(Vec<PredExpr>),
    Not(Box<PredExpr>),
}

impl PredExpr {
    /// Split a predicate into its top-level conjuncts, flattening
    /// nested ANDs.
    pub fn conjuncts(self) -> Vec<PredExpr> {
        match self {
            PredExpr::And(parts) => parts.into_iter().flat_map(PredExpr::conjuncts).collect(),
            other => vec![other],
        }
    }

    /// Conjunction of a list of predicates (flattened).
    pub fn and_all(parts: Vec<PredExpr>) -> Option<PredExpr> {
        let mut flat: Vec<PredExpr> = parts.into_iter().flat_map(PredExpr::conjuncts).collect();
        match flat.len() {
            0 => None,
            1 => Some(flat.remove(0)),
            _ => Some(PredExpr::And(flat)),
        }
    }

    /// Collect every referenced column.
    pub fn collect_columns(&self, out: &mut BTreeSet<ColumnId>) {
        match self {
            PredExpr::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            PredExpr::InList { expr, .. }
            | PredExpr::Like { expr, .. }
            | PredExpr::IsNull { expr, .. } => expr.collect_columns(out),
            PredExpr::And(parts) | PredExpr::Or(parts) => {
                for p in parts {
                    p.collect_columns(out);
                }
            }
            PredExpr::Not(inner) => inner.collect_columns(out),
        }
    }

    /// The set of referenced columns.
    pub fn columns(&self) -> BTreeSet<ColumnId> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    /// The set of referenced tables.
    pub fn tables(&self) -> BTreeSet<TableId> {
        self.columns().into_iter().map(|c| c.table).collect()
    }

    /// Rewrite column references through `f`.
    pub fn map_columns(&self, f: &mut impl FnMut(ColumnId) -> ColumnId) -> PredExpr {
        match self {
            PredExpr::Cmp { op, left, right } => PredExpr::Cmp {
                op: *op,
                left: left.map_columns(f),
                right: right.map_columns(f),
            },
            PredExpr::InList {
                expr,
                list,
                negated,
            } => PredExpr::InList {
                expr: expr.map_columns(f),
                list: list.clone(),
                negated: *negated,
            },
            PredExpr::Like {
                expr,
                pattern,
                negated,
            } => PredExpr::Like {
                expr: expr.map_columns(f),
                pattern: pattern.clone(),
                negated: *negated,
            },
            PredExpr::IsNull { expr, negated } => PredExpr::IsNull {
                expr: expr.map_columns(f),
                negated: *negated,
            },
            PredExpr::And(parts) => PredExpr::And(parts.iter().map(|p| p.map_columns(f)).collect()),
            PredExpr::Or(parts) => PredExpr::Or(parts.iter().map(|p| p.map_columns(f)).collect()),
            PredExpr::Not(inner) => PredExpr::Not(Box::new(inner.map_columns(f))),
        }
    }

    /// Canonical form for structural conjunct equality (paper §3.1.2:
    /// "predicate trees are the same modulo column equivalence"):
    /// comparisons are oriented so the lexicographically smaller side
    /// is on the left, commutative arithmetic is sorted, and AND/OR
    /// children are sorted.
    pub fn normalized(&self) -> PredExpr {
        match self {
            PredExpr::Cmp { op, left, right } => {
                let l = left.normalized();
                let r = right.normalized();
                if expr_sort_token(&r) < expr_sort_token(&l) {
                    PredExpr::Cmp {
                        op: op.flipped(),
                        left: r,
                        right: l,
                    }
                } else {
                    PredExpr::Cmp {
                        op: *op,
                        left: l,
                        right: r,
                    }
                }
            }
            PredExpr::InList {
                expr,
                list,
                negated,
            } => {
                let mut list = list.clone();
                list.sort_by(|a, b| a.total_cmp(b));
                PredExpr::InList {
                    expr: expr.normalized(),
                    list,
                    negated: *negated,
                }
            }
            PredExpr::Like {
                expr,
                pattern,
                negated,
            } => PredExpr::Like {
                expr: expr.normalized(),
                pattern: pattern.clone(),
                negated: *negated,
            },
            PredExpr::IsNull { expr, negated } => PredExpr::IsNull {
                expr: expr.normalized(),
                negated: *negated,
            },
            PredExpr::And(parts) => {
                let mut norm: Vec<PredExpr> = parts.iter().map(|p| p.normalized()).collect();
                norm.sort_by_key(|p| format!("{p:?}"));
                PredExpr::And(norm)
            }
            PredExpr::Or(parts) => {
                let mut norm: Vec<PredExpr> = parts.iter().map(|p| p.normalized()).collect();
                norm.sort_by_key(|p| format!("{p:?}"));
                PredExpr::Or(norm)
            }
            PredExpr::Not(inner) => PredExpr::Not(Box::new(inner.normalized())),
        }
    }

    /// Render with human-readable column names.
    pub fn display<'a>(&'a self, db: &'a Database) -> impl fmt::Display + 'a {
        DisplayPred { pred: self, db }
    }
}

struct DisplayPred<'a> {
    pred: &'a PredExpr,
    db: &'a Database,
}

impl fmt::Display for DisplayPred<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_pred(self.pred, self.db, f)
    }
}

fn fmt_pred(p: &PredExpr, db: &Database, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match p {
        PredExpr::Cmp { op, left, right } => {
            fmt_scalar(left, db, f)?;
            write!(f, " {} ", op.as_str())?;
            fmt_scalar(right, db, f)
        }
        PredExpr::InList {
            expr,
            list,
            negated,
        } => {
            fmt_scalar(expr, db, f)?;
            if *negated {
                f.write_str(" NOT")?;
            }
            f.write_str(" IN (")?;
            for (i, v) in list.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}")?;
            }
            f.write_str(")")
        }
        PredExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            fmt_scalar(expr, db, f)?;
            if *negated {
                f.write_str(" NOT")?;
            }
            write!(f, " LIKE '{pattern}'")
        }
        PredExpr::IsNull { expr, negated } => {
            fmt_scalar(expr, db, f)?;
            f.write_str(if *negated { " IS NOT NULL" } else { " IS NULL" })
        }
        PredExpr::And(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    f.write_str(" AND ")?;
                }
                f.write_str("(")?;
                fmt_pred(p, db, f)?;
                f.write_str(")")?;
            }
            Ok(())
        }
        PredExpr::Or(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    f.write_str(" OR ")?;
                }
                f.write_str("(")?;
                fmt_pred(p, db, f)?;
                f.write_str(")")?;
            }
            Ok(())
        }
        PredExpr::Not(inner) => {
            f.write_str("NOT (")?;
            fmt_pred(inner, db, f)?;
            f.write_str(")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::TableId;

    fn cid(t: u32, c: u16) -> ColumnId {
        ColumnId::new(TableId(t), c)
    }

    #[test]
    fn conjunct_splitting_flattens() {
        let p = PredExpr::And(vec![
            PredExpr::And(vec![
                PredExpr::IsNull {
                    expr: ScalarExpr::column(cid(0, 0)),
                    negated: false,
                },
                PredExpr::IsNull {
                    expr: ScalarExpr::column(cid(0, 1)),
                    negated: false,
                },
            ]),
            PredExpr::IsNull {
                expr: ScalarExpr::column(cid(0, 2)),
                negated: false,
            },
        ]);
        assert_eq!(p.conjuncts().len(), 3);
    }

    #[test]
    fn normalization_orients_comparisons() {
        // `5 > a` and `a < 5` normalize identically.
        let a = PredExpr::Cmp {
            op: CmpOp::Gt,
            left: ScalarExpr::literal(Value::Int(5)),
            right: ScalarExpr::column(cid(0, 0)),
        };
        let b = PredExpr::Cmp {
            op: CmpOp::Lt,
            left: ScalarExpr::column(cid(0, 0)),
            right: ScalarExpr::literal(Value::Int(5)),
        };
        assert_eq!(a.normalized(), b.normalized());
    }

    #[test]
    fn normalization_sorts_commutative_arith() {
        let ab = ScalarExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(ScalarExpr::column(cid(0, 0))),
            right: Box::new(ScalarExpr::column(cid(0, 1))),
        };
        let ba = ScalarExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(ScalarExpr::column(cid(0, 1))),
            right: Box::new(ScalarExpr::column(cid(0, 0))),
        };
        assert_eq!(ab.normalized(), ba.normalized());
    }

    #[test]
    fn column_collection_covers_nested() {
        let p = PredExpr::Or(vec![
            PredExpr::Cmp {
                op: CmpOp::Lt,
                left: ScalarExpr::column(cid(0, 0)),
                right: ScalarExpr::column(cid(0, 1)),
            },
            PredExpr::Cmp {
                op: CmpOp::Lt,
                left: ScalarExpr::column(cid(0, 2)),
                right: ScalarExpr::literal(Value::Int(8)),
            },
        ]);
        let cols = p.columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(p.tables().len(), 1);
    }

    #[test]
    fn map_columns_rewrites() {
        let p = PredExpr::Cmp {
            op: CmpOp::Eq,
            left: ScalarExpr::column(cid(0, 0)),
            right: ScalarExpr::column(cid(1, 0)),
        };
        let mapped = p.map_columns(&mut |c| ColumnId::new(TableId(9), c.ordinal));
        assert!(mapped.tables().contains(&TableId(9)));
        assert_eq!(mapped.tables().len(), 1);
    }

    #[test]
    fn and_all_flattens_and_simplifies() {
        let one = PredExpr::IsNull {
            expr: ScalarExpr::column(cid(0, 0)),
            negated: false,
        };
        assert_eq!(PredExpr::and_all(vec![]), None);
        assert_eq!(PredExpr::and_all(vec![one.clone()]), Some(one.clone()));
        let two = PredExpr::and_all(vec![one.clone(), one.clone()]).unwrap();
        assert!(matches!(two, PredExpr::And(v) if v.len() == 2));
    }
}
