//! Column type system and literal values.
//!
//! Histograms and selectivity arithmetic operate on a one-dimensional
//! [`SortKey`] (an `f64`): integers and floats map to themselves, dates
//! to day numbers, and strings to a big-endian prefix fraction. This is
//! the standard trick used by commercial optimizers to keep histogram
//! machinery type-agnostic.

use std::cmp::Ordering;
use std::fmt;

/// SQL column types supported by the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 4-byte integer.
    Int,
    /// 8-byte integer.
    BigInt,
    /// 8-byte IEEE double (also used for DECIMAL in this model).
    Double,
    /// Date stored as a day number (4 bytes).
    Date,
    /// Fixed-width character string.
    Char(u16),
    /// Variable-width string with a declared maximum.
    VarChar(u16),
}

impl ColumnType {
    /// Storage width in bytes for fixed-width types; `None` for
    /// variable-width types (whose average width lives in the stats).
    pub fn fixed_width(self) -> Option<u32> {
        match self {
            ColumnType::Int => Some(4),
            ColumnType::BigInt => Some(8),
            ColumnType::Double => Some(8),
            ColumnType::Date => Some(4),
            ColumnType::Char(n) => Some(n as u32),
            ColumnType::VarChar(_) => None,
        }
    }

    /// Declared maximum width in bytes.
    pub fn max_width(self) -> u32 {
        match self {
            ColumnType::VarChar(n) => n as u32,
            other => other.fixed_width().expect("fixed type has width"),
        }
    }

    /// True if values of this type are textual.
    pub fn is_string(self) -> bool {
        matches!(self, ColumnType::Char(_) | ColumnType::VarChar(_))
    }

    /// True if values of this type are numeric (orderable arithmetic).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            ColumnType::Int | ColumnType::BigInt | ColumnType::Double | ColumnType::Date
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => f.write_str("INT"),
            ColumnType::BigInt => f.write_str("BIGINT"),
            ColumnType::Double => f.write_str("DOUBLE"),
            ColumnType::Date => f.write_str("DATE"),
            ColumnType::Char(n) => write!(f, "CHAR({n})"),
            ColumnType::VarChar(n) => write!(f, "VARCHAR({n})"),
        }
    }
}

/// One-dimensional, order-preserving key used by histograms.
pub type SortKey = f64;

/// A literal value as it appears in predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Double(f64),
    Str(String),
    /// Day number since an arbitrary epoch.
    Date(i64),
    Null,
}

impl Value {
    /// Map the value onto the histogram domain. Strings map to a
    /// fraction built from their first eight bytes, which preserves
    /// lexicographic order for ASCII data.
    pub fn sort_key(&self) -> SortKey {
        match self {
            Value::Int(v) => *v as f64,
            Value::Double(v) => *v,
            Value::Date(v) => *v as f64,
            Value::Str(s) => string_sort_key(s),
            Value::Null => f64::NEG_INFINITY,
        }
    }

    /// Total order consistent with `sort_key` (NULL sorts first).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        self.sort_key().total_cmp(&other.sort_key())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Date(v) => write!(f, "{v}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

/// Order-preserving map from a string to `[0, 1)` using the first eight
/// bytes as a base-256 fraction.
pub fn string_sort_key(s: &str) -> SortKey {
    let mut acc = 0.0f64;
    let mut scale = 1.0f64 / 256.0;
    for &b in s.as_bytes().iter().take(8) {
        acc += (b as f64) * scale;
        scale /= 256.0;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ColumnType::Int.fixed_width(), Some(4));
        assert_eq!(ColumnType::Char(25).fixed_width(), Some(25));
        assert_eq!(ColumnType::VarChar(40).fixed_width(), None);
        assert_eq!(ColumnType::VarChar(40).max_width(), 40);
    }

    #[test]
    fn string_sort_key_preserves_order() {
        let words = ["", "a", "ab", "abc", "b", "ba", "zzzz"];
        for pair in words.windows(2) {
            assert!(
                string_sort_key(pair[0]) < string_sort_key(pair[1]),
                "{} !< {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn value_cmp_is_consistent() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Double(3.5)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
    }

    #[test]
    fn display_escapes_strings() {
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
    }
}
