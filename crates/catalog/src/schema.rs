//! Tables, columns, keys, and the [`Database`] root object.

use crate::ids::{ColumnId, TableId};
use crate::stats::ColumnStats;
use crate::types::ColumnType;
use std::collections::HashMap;

/// A column definition with its statistics.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
    pub stats: ColumnStats,
}

impl Column {
    /// Average stored width in bytes (declared width for fixed types,
    /// sampled average for VARCHARs).
    pub fn avg_width(&self) -> f64 {
        match self.ty.fixed_width() {
            Some(w) => w as f64,
            None => self.stats.avg_width,
        }
    }
}

/// A foreign-key edge `this.column -> referenced_table.referenced_column`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignKey {
    pub column: u16,
    pub referenced_table: TableId,
    pub referenced_column: u16,
}

/// A base table: columns, cardinality and key metadata.
#[derive(Debug, Clone)]
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<Column>,
    /// Estimated number of rows.
    pub rows: f64,
    /// Ordinals of the primary-key columns (empty for heaps without a
    /// declared key).
    pub primary_key: Vec<u16>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl Table {
    /// Column id for ordinal `i`.
    pub fn column_id(&self, ordinal: u16) -> ColumnId {
        ColumnId::new(self.id, ordinal)
    }

    /// Find a column ordinal by (case-insensitive) name.
    pub fn column_ordinal(&self, name: &str) -> Option<u16> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .map(|i| i as u16)
    }

    /// The column at `ordinal`, panicking on out-of-range (internal
    /// invariant: ColumnIds are only minted from real columns).
    pub fn column(&self, ordinal: u16) -> &Column {
        &self.columns[ordinal as usize]
    }

    /// Average width of a full row in bytes.
    pub fn row_width(&self) -> f64 {
        self.columns.iter().map(|c| c.avg_width()).sum()
    }

    /// Estimated heap size in bytes (rows x row width).
    pub fn heap_bytes(&self) -> f64 {
        self.rows * self.row_width()
    }

    /// All column ids of this table.
    pub fn all_column_ids(&self) -> impl Iterator<Item = ColumnId> + '_ {
        (0..self.columns.len() as u16).map(move |i| ColumnId::new(self.id, i))
    }
}

/// A database: the set of base tables plus a name index.
#[derive(Debug, Clone)]
pub struct Database {
    pub name: String,
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
}

impl Database {
    /// Start building a database.
    pub fn builder(name: impl Into<String>) -> DatabaseBuilder {
        DatabaseBuilder {
            db: Database {
                name: name.into(),
                tables: Vec::new(),
                by_name: HashMap::new(),
            },
        }
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Table by id; panics if the id was not minted by this database
    /// (ids are dense indices).
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Table lookup by case-insensitive name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .map(|id| self.table(*id))
    }

    /// Column metadata for a global column id. For view columns (ids in
    /// the view range) this panics — callers must resolve those through
    /// the physical layer's view registry.
    pub fn column(&self, id: ColumnId) -> &Column {
        self.table(id.table).column(id.ordinal)
    }

    /// Total size in bytes of all heaps.
    pub fn total_heap_bytes(&self) -> f64 {
        self.tables.iter().map(Table::heap_bytes).sum()
    }

    /// Human-readable `table.column` name for diagnostics.
    pub fn column_name(&self, id: ColumnId) -> String {
        if id.table.is_view() {
            return id.to_string();
        }
        let t = self.table(id.table);
        format!("{}.{}", t.name, t.column(id.ordinal).name)
    }

    fn rebuild_name_index(&mut self) {
        self.by_name = self
            .tables
            .iter()
            .map(|t| (t.name.to_ascii_lowercase(), t.id))
            .collect();
    }
}

/// Builder for [`Database`], assigning dense [`TableId`]s.
pub struct DatabaseBuilder {
    db: Database,
}

impl DatabaseBuilder {
    /// Add a table; returns its assigned id. Panics on duplicate names
    /// (schema construction is programmer-controlled).
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        rows: f64,
        columns: Vec<Column>,
        primary_key: Vec<u16>,
    ) -> TableId {
        let name = name.into();
        let id = TableId(self.db.tables.len() as u32);
        assert!(
            id.0 < TableId::VIEW_BASE,
            "too many base tables (collides with view id range)"
        );
        assert!(
            !self.db.by_name.contains_key(&name.to_ascii_lowercase()),
            "duplicate table name {name}"
        );
        for &pk in &primary_key {
            assert!(
                (pk as usize) < columns.len(),
                "primary key ordinal {pk} out of range for {name}"
            );
        }
        self.db.by_name.insert(name.to_ascii_lowercase(), id);
        self.db.tables.push(Table {
            id,
            name,
            columns,
            rows,
            primary_key,
            foreign_keys: Vec::new(),
        });
        id
    }

    /// Declare a foreign key (used by the cardinality module to detect
    /// key/foreign-key joins).
    pub fn add_foreign_key(
        &mut self,
        table: TableId,
        column: u16,
        referenced_table: TableId,
        referenced_column: u16,
    ) {
        self.db.tables[table.0 as usize]
            .foreign_keys
            .push(ForeignKey {
                column,
                referenced_table,
                referenced_column,
            });
    }

    /// Finalize the database.
    pub fn build(mut self) -> Database {
        self.db.rebuild_name_index();
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str, ty: ColumnType, ndv: f64) -> Column {
        Column {
            name: name.into(),
            ty,
            stats: ColumnStats::uniform(ndv, 0.0, ndv, ty.max_width() as f64),
        }
    }

    fn sample_db() -> Database {
        let mut b = Database::builder("testdb");
        let r = b.add_table(
            "r",
            1000.0,
            vec![
                col("a", ColumnType::Int, 1000.0),
                col("b", ColumnType::Int, 100.0),
                col("s", ColumnType::VarChar(32), 500.0),
            ],
            vec![0],
        );
        let s = b.add_table("s", 500.0, vec![col("y", ColumnType::Int, 500.0)], vec![0]);
        b.add_foreign_key(r, 1, s, 0);
        b.build()
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        let db = sample_db();
        assert!(db.table_by_name("R").is_some());
        assert!(db.table_by_name("nosuch").is_none());
    }

    #[test]
    fn column_ordinals_resolve() {
        let db = sample_db();
        let r = db.table_by_name("r").unwrap();
        assert_eq!(r.column_ordinal("B"), Some(1));
        assert_eq!(r.column_ordinal("z"), None);
    }

    #[test]
    fn row_width_counts_varchar_average() {
        let db = sample_db();
        let r = db.table_by_name("r").unwrap();
        // 4 + 4 + 32 (avg width seeded to max in this fixture).
        assert!((r.row_width() - 40.0).abs() < 1e-9);
        assert!((r.heap_bytes() - 40_000.0).abs() < 1e-6);
    }

    #[test]
    fn column_names_render() {
        let db = sample_db();
        let r = db.table_by_name("r").unwrap();
        assert_eq!(db.column_name(r.column_id(2)), "r.s");
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_names_panic() {
        let mut b = Database::builder("x");
        b.add_table("t", 1.0, vec![col("a", ColumnType::Int, 1.0)], vec![]);
        b.add_table("T", 1.0, vec![col("a", ColumnType::Int, 1.0)], vec![]);
    }

    #[test]
    fn foreign_keys_recorded() {
        let db = sample_db();
        let r = db.table_by_name("r").unwrap();
        assert_eq!(r.foreign_keys.len(), 1);
        assert_eq!(r.foreign_keys[0].referenced_table, TableId(1));
    }
}
