//! # pdt-catalog — schema, statistics and synthetic data models
//!
//! The catalog layer holds everything the optimizer and the tuner need
//! to know about a database *without ever touching rows*:
//!
//! * [`schema`] — tables, columns, keys ([`Database`] is the root);
//! * [`types`] — the column type system and literal values;
//! * [`stats`] — per-column statistics with equi-depth histograms,
//!   the basis of all selectivity estimation;
//! * [`datagen`] — seeded synthetic distributions used to *generate*
//!   statistics for benchmark databases (the stand-in for `dbgen` data:
//!   the tuning algorithms only consume statistics and optimizer costs,
//!   never raw tuples — see DESIGN.md §2).
//!
//! Hypothetical ("what-if") physical structures are layered on top of a
//! `Database` by `pdt-physical`; the catalog itself stays immutable
//! during a tuning session, which is what makes what-if simulation
//! cheap.

pub mod datagen;
pub mod ids;
pub mod schema;
pub mod stats;
pub mod types;

pub use datagen::{ColumnSpec, Distribution, TableSpec};
pub use ids::{ColumnId, TableId};
pub use schema::{Column, Database, DatabaseBuilder, Table};
pub use stats::{ColumnStats, Histogram};
pub use types::{string_sort_key, ColumnType, SortKey, Value};

/// Convenience alias: a database is the catalog for tuning purposes.
pub type Catalog = Database;
