//! Newtype identifiers for tables and columns.
//!
//! A [`ColumnId`] is globally unique: it pairs the owning table with the
//! column's ordinal. Materialized views registered by `pdt-physical`
//! receive `TableId`s from a separate, high range so that base tables
//! and view "tables" never collide.

use std::fmt;

/// Identifier of a table (or of a materialized view acting as a table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl TableId {
    /// First id reserved for materialized views simulated as tables.
    pub const VIEW_BASE: u32 = 1 << 24;

    /// True if this id denotes a materialized view, not a base table.
    pub fn is_view(self) -> bool {
        self.0 >= Self::VIEW_BASE
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_view() {
            write!(f, "v{}", self.0 - Self::VIEW_BASE)
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

/// Globally unique column identifier: owning table + ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnId {
    pub table: TableId,
    pub ordinal: u16,
}

impl ColumnId {
    pub fn new(table: TableId, ordinal: u16) -> ColumnId {
        ColumnId { table, ordinal }
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_range_is_disjoint() {
        assert!(!TableId(0).is_view());
        assert!(!TableId(TableId::VIEW_BASE - 1).is_view());
        assert!(TableId(TableId::VIEW_BASE).is_view());
    }

    #[test]
    fn column_ids_order_by_table_then_ordinal() {
        let a = ColumnId::new(TableId(1), 5);
        let b = ColumnId::new(TableId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TableId(3).to_string(), "t3");
        assert_eq!(TableId(TableId::VIEW_BASE + 2).to_string(), "v2");
        assert_eq!(ColumnId::new(TableId(3), 1).to_string(), "t3.c1");
    }
}
