//! Seeded synthetic statistics generation.
//!
//! The paper evaluates on TPC-H data produced by `dbgen` plus internal
//! databases. We do not ship row data; instead each benchmark database
//! describes its columns with a [`Distribution`], from which we *sample*
//! sort keys to build genuine equi-depth histograms. The tuning
//! algorithms only ever consume statistics and optimizer estimates, so
//! this preserves the paper-relevant behaviour (see DESIGN.md §2).

use crate::ids::TableId;
use crate::schema::{Column, DatabaseBuilder};
use crate::stats::{ColumnStats, Histogram};
use crate::types::{string_sort_key, ColumnType, SortKey};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of values sampled per column when building histograms.
const SAMPLE_SIZE: usize = 2_000;
/// Histogram resolution.
const BUCKETS: usize = 50;

/// A synthetic value distribution for one column.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// Uniform integers in `[min, max]`.
    UniformInt { min: i64, max: i64 },
    /// Uniform doubles in `[min, max)`.
    UniformDouble { min: f64, max: f64 },
    /// Zipf-distributed ranks `1..=n` with skew parameter `theta`
    /// (`theta = 0` degenerates to uniform).
    Zipf { n: u64, theta: f64 },
    /// Uniformly chosen dates in a day-number window.
    DateRange { min_day: i64, max_day: i64 },
    /// Strings drawn from a pool of `pool` distinct values with the
    /// given average length.
    StringPool { pool: u64, avg_len: u16 },
    /// A dense key `0..rows` (e.g. surrogate primary keys).
    Serial,
}

impl Distribution {
    /// Number of distinct values this distribution produces when `rows`
    /// rows are drawn.
    pub fn ndv(&self, rows: f64) -> f64 {
        match self {
            Distribution::UniformInt { min, max } => distinct_drawn((*max - *min + 1) as f64, rows),
            Distribution::UniformDouble { .. } => rows.max(1.0),
            Distribution::Zipf { n, .. } => distinct_drawn(*n as f64, rows),
            Distribution::DateRange { min_day, max_day } => {
                distinct_drawn((*max_day - *min_day + 1) as f64, rows)
            }
            Distribution::StringPool { pool, .. } => distinct_drawn(*pool as f64, rows),
            Distribution::Serial => rows.max(1.0),
        }
    }

    /// Draw one sort key.
    fn sample(&self, rng: &mut StdRng, rows: f64) -> SortKey {
        match self {
            Distribution::UniformInt { min, max } => rng.gen_range(*min..=*max) as f64,
            Distribution::UniformDouble { min, max } => rng.gen_range(*min..*max),
            Distribution::Zipf { n, theta } => zipf_sample(rng, *n, *theta) as f64,
            Distribution::DateRange { min_day, max_day } => {
                rng.gen_range(*min_day..=*max_day) as f64
            }
            Distribution::StringPool { pool, avg_len } => {
                // Deterministic pool member -> pseudo-string sort key.
                let member = rng.gen_range(0..*pool);
                let synth = synth_string(member, *avg_len);
                string_sort_key(&synth)
            }
            Distribution::Serial => rng.gen_range(0.0..rows.max(1.0)).floor(),
        }
    }

    fn domain(&self, rows: f64) -> (SortKey, SortKey) {
        match self {
            Distribution::UniformInt { min, max } => (*min as f64, *max as f64),
            Distribution::UniformDouble { min, max } => (*min, *max),
            Distribution::Zipf { n, .. } => (1.0, *n as f64),
            Distribution::DateRange { min_day, max_day } => (*min_day as f64, *max_day as f64),
            Distribution::StringPool { .. } => (0.0, 1.0),
            Distribution::Serial => (0.0, (rows - 1.0).max(0.0)),
        }
    }
}

/// Expected number of distinct values when drawing `rows` samples from a
/// domain of `domain` equally likely values.
fn distinct_drawn(domain: f64, rows: f64) -> f64 {
    if domain <= 0.0 {
        return 1.0;
    }
    (domain * (1.0 - (-rows / domain).exp())).clamp(1.0, domain)
}

/// Inverse-CDF-free Zipf sampling via rejection (adequate for building
/// histograms; not a hot path).
fn zipf_sample(rng: &mut StdRng, n: u64, theta: f64) -> u64 {
    if theta <= 1e-9 {
        return rng.gen_range(1..=n.max(1));
    }
    // Approximate inverse transform for the Zipf CDF using the
    // continuous analogue: P(X <= x) ~ (x/n)^(1-theta) for theta<1.
    let u: f64 = rng.gen_range(0.0f64..1.0);
    if (theta - 1.0).abs() < 1e-9 {
        let x = (n as f64).powf(u);
        return x.ceil().clamp(1.0, n as f64) as u64;
    }
    let exp = 1.0 / (1.0 - theta);
    let x = (n as f64) * u.powf(exp.abs());
    x.ceil().clamp(1.0, n as f64) as u64
}

/// A deterministic synthetic string for pool member `i`.
fn synth_string(i: u64, len: u16) -> String {
    let mut s = String::with_capacity(len as usize);
    let mut v = i.wrapping_mul(0x9E3779B97F4A7C15);
    for _ in 0..len.max(1) {
        let c = b'a' + (v % 26) as u8;
        s.push(c as char);
        v = v.rotate_left(11).wrapping_mul(0x2545F4914F6CDD1D) ^ i;
    }
    s
}

/// Specification of one synthetic column.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    pub name: String,
    pub ty: ColumnType,
    pub dist: Distribution,
    pub null_frac: f64,
}

impl ColumnSpec {
    pub fn new(name: impl Into<String>, ty: ColumnType, dist: Distribution) -> ColumnSpec {
        ColumnSpec {
            name: name.into(),
            ty,
            dist,
            null_frac: 0.0,
        }
    }

    /// Materialize the column's statistics by sampling the distribution.
    pub fn build_column(&self, rng: &mut StdRng, rows: f64) -> Column {
        let sample: Vec<SortKey> = (0..SAMPLE_SIZE)
            .map(|_| self.dist.sample(rng, rows))
            .collect();
        let (min, max) = self.dist.domain(rows);
        let avg_width = match self.ty {
            ColumnType::VarChar(max_len) => (max_len as f64 * 0.6).max(1.0),
            other => other.max_width() as f64,
        };
        let histogram = Histogram::from_sample(sample, BUCKETS);
        Column {
            name: self.name.clone(),
            ty: self.ty,
            stats: ColumnStats {
                ndv: self.dist.ndv(rows),
                null_frac: self.null_frac,
                min,
                max,
                avg_width,
                histogram,
            },
        }
    }
}

/// Specification of one synthetic table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub name: String,
    pub rows: f64,
    pub columns: Vec<ColumnSpec>,
    pub primary_key: Vec<u16>,
}

impl TableSpec {
    /// Add the table to a [`DatabaseBuilder`] with a deterministic
    /// per-table RNG stream derived from `seed`.
    pub fn register(&self, builder: &mut DatabaseBuilder, seed: u64) -> TableId {
        let mut rng = StdRng::seed_from_u64(seed ^ fxhash(&self.name));
        let columns = self
            .columns
            .iter()
            .map(|c| c.build_column(&mut rng, self.rows))
            .collect();
        builder.add_table(
            self.name.clone(),
            self.rows,
            columns,
            self.primary_key.clone(),
        )
    }
}

/// Tiny string hash for seeding per-table RNG streams.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Database;

    #[test]
    fn generation_is_deterministic() {
        let spec = ColumnSpec::new(
            "x",
            ColumnType::Int,
            Distribution::UniformInt { min: 0, max: 999 },
        );
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let c1 = spec.build_column(&mut rng1, 10_000.0);
        let c2 = spec.build_column(&mut rng2, 10_000.0);
        assert_eq!(c1.stats, c2.stats);
    }

    #[test]
    fn uniform_int_histogram_is_roughly_uniform() {
        let spec = ColumnSpec::new(
            "x",
            ColumnType::Int,
            Distribution::UniformInt { min: 0, max: 9999 },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let c = spec.build_column(&mut rng, 100_000.0);
        let sel = c
            .stats
            .range_selectivity(Some((2500.0, true)), Some((7500.0, true)));
        assert!((sel - 0.5).abs() < 0.06, "sel={sel}");
    }

    #[test]
    fn zipf_skews_towards_small_ranks() {
        let spec = ColumnSpec::new(
            "x",
            ColumnType::Int,
            Distribution::Zipf {
                n: 1000,
                theta: 0.9,
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        let c = spec.build_column(&mut rng, 100_000.0);
        let low = c.stats.range_selectivity(None, Some((100.0, true)));
        assert!(low > 0.3, "low-rank mass too small: {low}");
    }

    #[test]
    fn serial_ndv_equals_rows() {
        let d = Distribution::Serial;
        assert_eq!(d.ndv(5000.0), 5000.0);
    }

    #[test]
    fn distinct_drawn_saturates() {
        assert!((distinct_drawn(10.0, 1e9) - 10.0).abs() < 1e-6);
        assert!(distinct_drawn(1e9, 10.0) <= 10.0 + 1e-6);
    }

    #[test]
    fn table_spec_builds_into_database() {
        let spec = TableSpec {
            name: "t".into(),
            rows: 1000.0,
            columns: vec![
                ColumnSpec::new("id", ColumnType::Int, Distribution::Serial),
                ColumnSpec::new(
                    "v",
                    ColumnType::VarChar(20),
                    Distribution::StringPool {
                        pool: 50,
                        avg_len: 12,
                    },
                ),
            ],
            primary_key: vec![0],
        };
        let mut b = Database::builder("gen");
        let id = spec.register(&mut b, 42);
        let db = b.build();
        let t = db.table(id);
        assert_eq!(t.columns.len(), 2);
        assert!(t.column(1).avg_width() < 20.0);
        assert!(t.column(0).stats.histogram.is_some());
    }

    #[test]
    fn synth_strings_are_stable_per_member() {
        assert_eq!(synth_string(5, 10), synth_string(5, 10));
        assert_ne!(synth_string(5, 10), synth_string(6, 10));
    }
}
