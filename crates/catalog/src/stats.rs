//! Column statistics and equi-depth histograms.
//!
//! These statistics are the *only* information the optimizer's
//! cardinality module consumes, mirroring the paper's setup where
//! hypothetical structures are simulated "by adding meta-data and
//! statistical information to the system catalogs".

use crate::types::SortKey;

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: f64,
    /// Fraction of NULLs in the column.
    pub null_frac: f64,
    /// Minimum value (sort-key domain).
    pub min: SortKey,
    /// Maximum value (sort-key domain).
    pub max: SortKey,
    /// Average stored width in bytes (equals the declared width for
    /// fixed-width columns; sampled for VARCHARs).
    pub avg_width: f64,
    /// Optional equi-depth histogram; when absent, estimates fall back
    /// to the uniform model over `[min, max]`.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Analytic statistics for a uniformly distributed column.
    pub fn uniform(ndv: f64, min: SortKey, max: SortKey, avg_width: f64) -> ColumnStats {
        ColumnStats {
            ndv: ndv.max(1.0),
            null_frac: 0.0,
            min,
            max,
            avg_width,
            histogram: None,
        }
    }

    /// Selectivity of `col = v`.
    pub fn eq_selectivity(&self, v: SortKey) -> f64 {
        if v < self.min || v > self.max {
            return 0.0;
        }
        match &self.histogram {
            Some(h) => h.eq_selectivity(v).max(1e-9),
            None => ((1.0 - self.null_frac) / self.ndv.max(1.0)).clamp(1e-9, 1.0),
        }
    }

    /// Selectivity of an (optionally one-sided) range predicate.
    /// Bounds are `(value, inclusive)`.
    pub fn range_selectivity(
        &self,
        lo: Option<(SortKey, bool)>,
        hi: Option<(SortKey, bool)>,
    ) -> f64 {
        let sel = match &self.histogram {
            Some(h) => h.range_selectivity(lo, hi),
            None => uniform_range_selectivity(self.min, self.max, lo, hi),
        };
        (sel * (1.0 - self.null_frac)).clamp(0.0, 1.0)
    }

    /// Estimated number of distinct values after keeping `fraction` of
    /// the rows of a table with `rows` rows (Cardenas' formula).
    pub fn distinct_after_filter(&self, rows: f64, fraction: f64) -> f64 {
        let kept = (rows * fraction).max(0.0);
        let d = self.ndv.max(1.0);
        // D * (1 - (1 - 1/D)^kept), numerically stabilized.
        let per_value = 1.0 / d;
        let expected = d * (1.0 - (-kept * per_value.min(1.0)).exp());
        expected.clamp(0.0, d.min(kept.max(1.0)))
    }
}

fn uniform_range_selectivity(
    min: SortKey,
    max: SortKey,
    lo: Option<(SortKey, bool)>,
    hi: Option<(SortKey, bool)>,
) -> f64 {
    if max <= min {
        // Degenerate single-value domain: any bound either keeps or
        // drops everything.
        let keep_lo = lo.is_none_or(|(v, inc)| if inc { v <= min } else { v < min });
        let keep_hi = hi.is_none_or(|(v, inc)| if inc { v >= max } else { v > max });
        return if keep_lo && keep_hi { 1.0 } else { 0.0 };
    }
    let width = max - min;
    let lo_v = lo.map_or(min, |(v, _)| v.clamp(min, max));
    let hi_v = hi.map_or(max, |(v, _)| v.clamp(min, max));
    ((hi_v - lo_v) / width).clamp(0.0, 1.0)
}

/// Equi-depth histogram: `bounds.len() == buckets + 1`, each bucket
/// holds `1 / buckets` of the non-null rows, and `distinct[i]` counts
/// the distinct values inside bucket `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub bounds: Vec<SortKey>,
    pub distinct: Vec<f64>,
}

impl Histogram {
    /// Build an equi-depth histogram from a sample of sort keys.
    /// Returns `None` for empty samples.
    pub fn from_sample(mut sample: Vec<SortKey>, buckets: usize) -> Option<Histogram> {
        sample.retain(|v| v.is_finite());
        if sample.is_empty() || buckets == 0 {
            return None;
        }
        sample.sort_by(|a, b| a.total_cmp(b));
        let n = sample.len();
        let buckets = buckets.min(n);
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut distinct = Vec::with_capacity(buckets);
        bounds.push(sample[0]);
        for b in 1..=buckets {
            let hi_idx = (b * n) / buckets;
            let lo_idx = ((b - 1) * n) / buckets;
            let slice = &sample[lo_idx..hi_idx.max(lo_idx + 1).min(n)];
            let mut d = 1.0;
            for w in slice.windows(2) {
                if w[1] > w[0] {
                    d += 1.0;
                }
            }
            distinct.push(d);
            bounds.push(sample[(hi_idx.max(1) - 1).min(n - 1)]);
        }
        // Ensure the last bound is the max.
        *bounds.last_mut().expect("non-empty") = sample[n - 1];
        Some(Histogram { bounds, distinct })
    }

    fn buckets(&self) -> usize {
        self.distinct.len()
    }

    /// Fraction of rows strictly below `v` (with linear interpolation
    /// inside the containing bucket).
    pub fn fraction_below(&self, v: SortKey) -> f64 {
        let b = self.buckets();
        if b == 0 {
            return 0.0;
        }
        if v <= self.bounds[0] {
            return 0.0;
        }
        if v >= self.bounds[b] {
            return 1.0;
        }
        let per_bucket = 1.0 / b as f64;
        let mut acc = 0.0;
        for i in 0..b {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if v >= hi {
                acc += per_bucket;
            } else {
                if hi > lo {
                    acc += per_bucket * ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                }
                break;
            }
        }
        acc.clamp(0.0, 1.0)
    }

    /// Selectivity of `col = v`: the containing bucket's share divided
    /// by its distinct count.
    pub fn eq_selectivity(&self, v: SortKey) -> f64 {
        let b = self.buckets();
        if b == 0 || v < self.bounds[0] || v > self.bounds[b] {
            return 0.0;
        }
        // A heavy hitter can span several equi-depth buckets (each a
        // zero-width [v, v] bucket); sum the contribution of every
        // bucket whose range contains v.
        let per_bucket = 1.0 / b as f64;
        let mut acc = 0.0;
        for i in 0..b {
            if v >= self.bounds[i] && v <= self.bounds[i + 1] {
                acc += per_bucket / self.distinct[i].max(1.0);
            }
        }
        acc.min(1.0)
    }

    /// Selectivity of a range predicate with optional bounds.
    pub fn range_selectivity(
        &self,
        lo: Option<(SortKey, bool)>,
        hi: Option<(SortKey, bool)>,
    ) -> f64 {
        let lo_frac = match lo {
            None => 0.0,
            Some((v, inclusive)) => {
                let f = self.fraction_below(v);
                if inclusive {
                    f
                } else {
                    f + self.eq_selectivity(v)
                }
            }
        };
        let hi_frac = match hi {
            None => 1.0,
            Some((v, inclusive)) => {
                let f = self.fraction_below(v);
                if inclusive {
                    f + self.eq_selectivity(v)
                } else {
                    f
                }
            }
        };
        (hi_frac - lo_frac).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist() -> Histogram {
        let sample: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        Histogram::from_sample(sample, 20).unwrap()
    }

    #[test]
    fn histogram_has_requested_buckets() {
        let h = uniform_hist();
        assert_eq!(h.distinct.len(), 20);
        assert_eq!(h.bounds.len(), 21);
        assert_eq!(h.bounds[0], 0.0);
        assert_eq!(*h.bounds.last().unwrap(), 999.0);
    }

    #[test]
    fn fraction_below_tracks_uniform() {
        let h = uniform_hist();
        for v in [100.0, 250.0, 500.0, 900.0] {
            let got = h.fraction_below(v);
            let want = v / 999.0;
            assert!((got - want).abs() < 0.06, "v={v}: got {got}, want {want}");
        }
    }

    #[test]
    fn range_selectivity_interval() {
        let h = uniform_hist();
        let sel = h.range_selectivity(Some((200.0, true)), Some((400.0, false)));
        assert!((sel - 0.2).abs() < 0.05, "sel={sel}");
    }

    #[test]
    fn eq_selectivity_of_distinct_values() {
        let h = uniform_hist();
        let sel = h.eq_selectivity(500.0);
        assert!((sel - 0.001).abs() < 5e-4, "sel={sel}");
    }

    #[test]
    fn out_of_domain_selectivities_are_zero() {
        let h = uniform_hist();
        assert_eq!(h.eq_selectivity(-5.0), 0.0);
        assert_eq!(h.range_selectivity(Some((2000.0, true)), None), 0.0);
    }

    #[test]
    fn skewed_samples_keep_equi_depth() {
        // 90% of the mass at value 0.
        let mut sample = vec![0.0; 900];
        sample.extend((1..=100).map(|i| i as f64));
        let h = Histogram::from_sample(sample, 10).unwrap();
        // Equality on the heavy value should be close to 0.9.
        let sel = h.eq_selectivity(0.0);
        assert!(sel > 0.5, "heavy-hitter selectivity too small: {sel}");
    }

    #[test]
    fn stats_uniform_fallback() {
        let s = ColumnStats::uniform(100.0, 0.0, 100.0, 4.0);
        let sel = s.range_selectivity(Some((25.0, true)), Some((75.0, true)));
        assert!((sel - 0.5).abs() < 1e-9);
        assert!((s.eq_selectivity(10.0) - 0.01).abs() < 1e-9);
        assert_eq!(s.eq_selectivity(-1.0), 0.0);
    }

    #[test]
    fn degenerate_single_value_domain() {
        let s = ColumnStats::uniform(1.0, 5.0, 5.0, 4.0);
        assert_eq!(s.range_selectivity(Some((5.0, true)), None), 1.0);
        assert_eq!(s.range_selectivity(Some((5.0, false)), None), 0.0);
    }

    #[test]
    fn distinct_after_filter_bounds() {
        let s = ColumnStats::uniform(1000.0, 0.0, 1.0, 4.0);
        let d = s.distinct_after_filter(1_000_000.0, 1.0);
        assert!(d <= 1000.0 && d > 990.0, "d={d}");
        let d_small = s.distinct_after_filter(1_000_000.0, 1e-6);
        assert!(d_small <= 1.0 + 1e-6, "d_small={d_small}");
    }

    #[test]
    fn empty_sample_yields_none() {
        assert!(Histogram::from_sample(vec![], 8).is_none());
        assert!(Histogram::from_sample(vec![f64::NAN], 8).is_none());
    }
}
