//! # pdt-baseline — a bottom-up physical design advisor (the "CTT")
//!
//! A faithful stand-in for the commercial tools the paper compares
//! against (AutoAdmin / Database Tuning Advisor lineage), implementing
//! the classic three-stage pipeline the paper's introduction describes:
//!
//! 1. **Candidate selection** — "for each query in the workload, find a
//!    good set of candidate structures" by tuning each query in
//!    isolation and keeping the structures its optimal plan uses,
//!    *capped per query* (the caps and per-query myopia are the
//!    documented weaknesses the relaxation approach removes);
//! 2. **Merging** — a single eager pass that pairwise-merges candidates
//!    ("each structure in the initial set is merged at most once",
//!    the restriction of Agrawal et al. the paper quotes);
//! 3. **Enumeration** — bottom-up greedy: start from the base
//!    configuration and repeatedly add the candidate with the best
//!    benefit-per-byte that still fits the budget, re-optimizing only
//!    queries that touch the added structure (the atomic-configuration
//!    approximation).
//!
//! The per-addition progress trace reproduces the paper's Figure 3.

use pdt_catalog::{Database, TableId};
use pdt_opt::Optimizer;
use pdt_physical::{Configuration, Index, MaterializedView};
use pdt_trace::Tracer;
use pdt_tuner::cache::{CacheEntry, CostCache};
use pdt_tuner::eval::{evaluate_full_ctx, EvalCtx, EvalResult};
use pdt_tuner::instrument::OptimalSink;
use pdt_tuner::par::{par_map, resolve_threads};
use pdt_tuner::Workload;
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Options for the bottom-up advisor.
#[derive(Debug, Clone)]
pub struct BaselineOptions {
    /// Storage budget in bytes (None = unconstrained).
    pub space_budget: Option<f64>,
    /// Recommend materialized views too.
    pub with_views: bool,
    /// Candidate cap per query (the heuristic cut the paper criticizes).
    pub max_candidates_per_query: usize,
    /// Maximum suffix (included) columns a candidate index may carry —
    /// period-typical tools bounded index width, missing the wide
    /// covering indexes the instrumented approach derives exactly.
    pub max_suffix_cols: usize,
    /// A view candidate for a *wide* join is proposed only when its
    /// FROM-set appears in at least this many workload queries (the
    /// "frequent table-subset" heuristic of the DB2/DTA lineage).
    pub view_table_subset_min_freq: usize,
    /// Queries joining at most this many tables get an exact per-query
    /// view candidate; wider joins only get generalized
    /// (constant-free) candidates via the frequent-subset rule — the
    /// candidate-space pruning the paper's introduction describes
    /// ("today's tools set bounds on the maximum number of structures
    /// to consider per query").
    pub max_view_join_tables: usize,
    /// Optimizer-call budget (the tool's "tuning time").
    pub max_evaluations: usize,
    /// Worker threads for atomic-configuration evaluation (0 = one per
    /// available core). The report is identical for every value.
    pub threads: usize,
    /// Memoize optimizer what-if calls in a shared [`CostCache`] — the
    /// generalization of the atomic-configuration shortcut: a query is
    /// re-optimized at most once per distinct projection of a trial
    /// configuration onto its tables.
    pub cost_cache: bool,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            space_budget: None,
            with_views: true,
            max_candidates_per_query: 8,
            max_suffix_cols: 4,
            view_table_subset_min_freq: 2,
            max_view_join_tables: 4,
            max_evaluations: 5_000,
            threads: 1,
            cost_cache: true,
        }
    }
}

/// One candidate physical structure (a view travels with its indexes).
#[derive(Debug, Clone)]
pub enum Candidate {
    Index(Index),
    View {
        view: MaterializedView,
        indexes: Vec<Index>,
    },
}

impl Candidate {
    /// Tables whose queries may change when this candidate is added.
    fn affected_tables(&self) -> BTreeSet<TableId> {
        match self {
            Candidate::Index(i) => [i.table].into(),
            Candidate::View { view, .. } => view.def.tables.clone(),
        }
    }

    fn add_to(&self, config: &mut Configuration) -> bool {
        match self {
            Candidate::Index(i) => {
                if i.table.is_view() {
                    // An index on a view requires the view to exist.
                    if config.view(i.table).is_none() {
                        return false;
                    }
                }
                config.add_index(i.clone())
            }
            Candidate::View { view, indexes } => {
                if config.find_view_by_def(&view.def).is_some() {
                    return false;
                }
                // Candidates were minted against per-query scratch
                // configurations, so their ids collide across queries:
                // re-register under a fresh id and remap the indexes.
                let fresh = config.allocate_view_id();
                let mut v = view.clone();
                v.id = fresh;
                config.add_view(v);
                for i in indexes {
                    let mut idx = Index::new(
                        fresh,
                        i.key
                            .iter()
                            .map(|c| pdt_catalog::ColumnId::new(fresh, c.ordinal)),
                        i.suffix
                            .iter()
                            .map(|c| pdt_catalog::ColumnId::new(fresh, c.ordinal)),
                    );
                    idx.clustered = i.clustered;
                    config.add_index(idx);
                }
                true
            }
        }
    }

    fn size_bytes(&self, db: &Database, config: &Configuration) -> f64 {
        let model = pdt_physical::size::SizeModel::default();
        let mut trial = config.clone();
        if !self.add_to(&mut trial) {
            return f64::INFINITY;
        }
        let schema = pdt_physical::PhysicalSchema::new(db, &trial);
        match self {
            Candidate::Index(i) => model.index_bytes_charged(&schema, i),
            Candidate::View { indexes, .. } => indexes
                .iter()
                .map(|i| model.index_bytes_charged(&schema, i))
                .sum(),
        }
    }

    fn signature(&self) -> String {
        match self {
            Candidate::Index(i) => format!("ix:{i}"),
            Candidate::View { view, .. } => format!("view:{:?}", view.def),
        }
    }
}

/// A point of the best-configuration-over-time trace (Fig. 3).
#[derive(Debug, Clone, Copy)]
pub struct ProgressPoint {
    pub optimizer_calls: usize,
    pub best_cost: f64,
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    pub initial_cost: f64,
    pub best_config: Configuration,
    pub best_cost: f64,
    pub best_size: f64,
    pub candidate_count: usize,
    pub optimizer_calls: usize,
    /// What-if cost-cache hits/misses (both 0 with the cache disabled).
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub progress: Vec<ProgressPoint>,
    /// Roll-up of the structured trace (`Some` only when tuned with a
    /// [`Tracer`]); per-phase `elapsed` is wall-clock, everything else
    /// deterministic.
    pub trace: Option<pdt_trace::TraceSummary>,
    pub elapsed: Duration,
}

impl BaselineReport {
    /// `improvement = 100 · (1 − cost/initial)` (§4).
    pub fn improvement_pct(&self) -> f64 {
        100.0 * (1.0 - self.best_cost / self.initial_cost.max(1e-12))
    }
}

/// The bottom-up advisor.
pub struct BaselineAdvisor<'a> {
    pub db: &'a Database,
    pub options: BaselineOptions,
}

impl<'a> BaselineAdvisor<'a> {
    pub fn new(db: &'a Database, options: BaselineOptions) -> Self {
        BaselineAdvisor { db, options }
    }

    /// Run the three-stage pipeline.
    pub fn tune(&self, workload: &Workload) -> BaselineReport {
        self.tune_traced(workload, None)
    }

    /// [`BaselineAdvisor::tune`] with an optional structured-event
    /// [`Tracer`]. Events are emitted from the driver thread only, so
    /// the trace is byte-identical for every `threads` value.
    pub fn tune_traced(&self, workload: &Workload, tracer: Option<&Tracer>) -> BaselineReport {
        let start = Instant::now();
        let opt = Optimizer::new(self.db);
        let base = Configuration::base(self.db);
        let mut calls = 0usize;

        let threads = resolve_threads(self.options.threads);
        let cache = self.options.cost_cache.then(CostCache::new);
        let ctx = EvalCtx {
            threads,
            cache: cache.as_ref(),
            tracer,
            ..EvalCtx::default()
        };

        if let Some(t) = tracer {
            // No thread count in the event stream: the trace must be
            // byte-identical for every `--threads` value.
            let mut fields: Vec<(&'static str, pdt_trace::Value)> =
                vec![("entries", workload.entries.len().into())];
            if let Some(b) = self.options.space_budget {
                fields.push(("budget", b.into()));
            }
            t.emit("baseline.begin", fields);
        }
        let setup_span = tracer.map(|t| t.span("setup"));
        let base_eval = evaluate_full_ctx(self.db, &opt, &base, workload, ctx);
        calls += base_eval.optimizer_calls;
        let initial_cost = base_eval.total_cost;
        drop(setup_span);
        let candidates_span = tracer.map(|t| t.span("candidates"));

        // ---- stage 1: per-query candidate selection ------------------
        // Index candidates are plan-derived (the Chaudhuri-Narasayya
        // approach the paper cites), but width-capped; view candidates
        // come from the frequent-table-subset heuristic with
        // constant-generalized definitions — the guesswork the
        // relaxation approach eliminates.
        let mut table_set_freq: HashMap<BTreeSet<TableId>, usize> = HashMap::new();
        for entry in &workload.entries {
            if let Some(q) = &entry.select {
                *table_set_freq
                    .entry(q.tables.iter().copied().collect())
                    .or_insert(0) += 1;
            }
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for entry in &workload.entries {
            let Some(q) = &entry.select else { continue };
            // Index candidates: optimize the query in isolation
            // (indexes only) and keep what the plan used.
            let mut cfg = base.clone();
            let plan = match tracer {
                Some(t) => {
                    let mut sink = pdt_opt::TracingSink::new(OptimalSink::new(false), t);
                    opt.optimize_with_sink(&mut cfg, q, &mut sink)
                }
                None => {
                    let mut sink = OptimalSink::new(false);
                    opt.optimize_with_sink(&mut cfg, q, &mut sink)
                }
            };
            calls += 1;
            pdt_trace::incr(tracer, "optimizer.calls", 1);
            let mut used: Vec<&pdt_opt::IndexUsage> = plan.index_usages.iter().collect();
            used.sort_by(|a, b| b.access_cost().total_cmp(&a.access_cost()));
            let mut taken = 0usize;
            for u in used {
                if taken >= self.options.max_candidates_per_query {
                    break;
                }
                if base.contains_index(&u.index) || u.index.table.is_view() {
                    continue;
                }
                // Width cap: keep only the first few suffix columns.
                let mut idx = u.index.clone();
                if idx.suffix.len() > self.options.max_suffix_cols {
                    idx.suffix = idx
                        .suffix
                        .iter()
                        .copied()
                        .take(self.options.max_suffix_cols)
                        .collect();
                }
                let cand = Candidate::Index(idx);
                if seen.insert(cand.signature()) {
                    candidates.push(cand);
                }
                taken += 1;
            }

            // View candidate: only for frequent FROM-sets, with the
            // definition generalized (constants dropped) so it can
            // serve sibling queries.
            if self.options.with_views {
                let block = pdt_opt::QueryBlock::from_bound(self.db, q);
                let spjg = block.to_spjg();
                let freq = table_set_freq.get(&spjg.tables).copied().unwrap_or(0);
                let interesting = spjg.tables.len() >= 2 || spjg.is_grouped();
                let cand = if !interesting {
                    None
                } else if spjg.tables.len() <= self.options.max_view_join_tables {
                    // Narrow joins: the exact per-query view.
                    self.view_candidate(spjg)
                } else if freq >= self.options.view_table_subset_min_freq {
                    // Wide joins: only the generalized frequent-subset
                    // candidate.
                    self.generalized_view_candidate(spjg)
                } else {
                    None
                };
                if let Some(cand) = cand {
                    if seen.insert(cand.signature()) {
                        candidates.push(cand);
                    }
                }
            }
        }

        // ---- stage 2: one-shot pairwise merging ----------------------
        let merged = self.merge_pass(&candidates);
        for m in merged {
            if seen.insert(m.signature()) {
                candidates.push(m);
            }
        }
        let candidate_count = candidates.len();
        pdt_trace::emit(
            tracer,
            "baseline.candidates",
            vec![("count", candidate_count.into())],
        );
        drop(candidates_span);
        let greedy_span = tracer.map(|t| t.span("greedy"));

        // ---- stage 3: greedy bottom-up enumeration -------------------
        let mut config = base.clone();
        let mut eval = base_eval;
        let mut size = config.size_bytes(self.db);
        let mut progress = vec![ProgressPoint {
            optimizer_calls: calls,
            best_cost: eval.total_cost,
        }];
        let mut remaining: Vec<Candidate> = candidates;

        loop {
            if calls >= self.options.max_evaluations {
                break;
            }
            let mut best_pick: Option<(usize, EvalResult, f64, f64)> = None; // (idx, eval, new_size, score)
            for (i, cand) in remaining.iter().enumerate() {
                if calls >= self.options.max_evaluations {
                    break;
                }
                let mut trial = config.clone();
                if !cand.add_to(&mut trial) {
                    continue;
                }
                let cand_bytes = cand.size_bytes(self.db, &config);
                let new_size = size + cand_bytes;
                if let Some(budget) = self.options.space_budget {
                    if new_size > budget {
                        continue;
                    }
                }
                // Atomic-configuration approximation: re-optimize only
                // queries touching the candidate's tables.
                let affected = cand.affected_tables();
                let trial_eval =
                    reopt_affected(self.db, &opt, &trial, workload, &eval, &affected, ctx);
                calls += trial_eval.optimizer_calls;
                let benefit = eval.total_cost - trial_eval.total_cost;
                if benefit <= 0.0 {
                    continue;
                }
                let score = benefit / cand_bytes.max(1.0);
                if best_pick.as_ref().is_none_or(|(_, _, _, s)| score > *s) {
                    best_pick = Some((i, trial_eval, new_size, score));
                }
            }
            let Some((idx, new_eval, new_size, score)) = best_pick else {
                break;
            };
            let cand = remaining.swap_remove(idx);
            pdt_trace::emit(
                tracer,
                "baseline.add",
                vec![
                    (
                        "kind",
                        match &cand {
                            Candidate::Index(_) => "index".into(),
                            Candidate::View { .. } => "view".into(),
                        },
                    ),
                    ("cost", new_eval.total_cost.into()),
                    ("size", new_size.into()),
                    ("score", score.into()),
                ],
            );
            pdt_trace::incr(tracer, "baseline.additions", 1);
            cand.add_to(&mut config);
            eval = new_eval;
            size = new_size;
            progress.push(ProgressPoint {
                optimizer_calls: calls,
                best_cost: eval.total_cost,
            });
        }
        drop(greedy_span);

        pdt_trace::emit(
            tracer,
            "baseline.end",
            vec![
                ("cost", eval.total_cost.into()),
                ("optimizer_calls", calls.into()),
            ],
        );
        BaselineReport {
            initial_cost,
            best_cost: eval.total_cost,
            best_size: size,
            best_config: config,
            candidate_count,
            optimizer_calls: calls,
            cache_hits: cache.as_ref().map_or(0, |c| c.hits()),
            cache_misses: cache.as_ref().map_or(0, |c| c.misses()),
            progress,
            trace: tracer.map(|t| t.summary()),
            elapsed: start.elapsed(),
        }
    }

    /// Generalize a query's SPJG definition into a shareable view: drop
    /// the range and non-sargable predicates and expose their columns
    /// (grouping by them when the view aggregates). AVG-style
    /// aggregates become non-derivable under the coarser grouping —
    /// one of the characteristic misses of syntactic view selection.
    fn generalized_view_candidate(&self, mut def: pdt_physical::SpjgExpr) -> Option<Candidate> {
        for r in std::mem::take(&mut def.ranges) {
            def.output_cols.insert(r.column);
            if def.is_grouped() {
                def.group_by.insert(r.column);
            }
        }
        for o in std::mem::take(&mut def.others) {
            for c in o.columns() {
                def.output_cols.insert(c);
                if def.is_grouped() {
                    def.group_by.insert(c);
                }
            }
        }
        def.canonicalize();
        self.view_candidate(def)
    }

    /// Wrap a definition as a view candidate with a clustered index.
    fn view_candidate(&self, def: pdt_physical::SpjgExpr) -> Option<Candidate> {
        let opt = Optimizer::new(self.db);
        let scratch = Configuration::new();
        let rows = opt.estimate_view_rows(&scratch, &def);
        // Storage sanity cap: tools prune views larger than the data.
        let id = pdt_catalog::TableId(pdt_catalog::TableId::VIEW_BASE);
        let view = MaterializedView::create(id, def, rows, self.db);
        let key: Vec<pdt_catalog::ColumnId> = if view.def.group_by.is_empty() {
            vec![pdt_catalog::ColumnId::new(id, 0)]
        } else {
            view.def
                .group_by
                .iter()
                .filter_map(|g| view.ordinal_of_base(*g, None))
                .map(|o| pdt_catalog::ColumnId::new(id, o))
                .collect()
        };
        let clustered = Index::clustered(
            id,
            if key.is_empty() {
                vec![pdt_catalog::ColumnId::new(id, 0)]
            } else {
                key
            },
        );
        Some(Candidate::View {
            view,
            indexes: vec![clustered],
        })
    }

    /// Stage 2: each candidate participates in at most one merge.
    fn merge_pass(&self, candidates: &[Candidate]) -> Vec<Candidate> {
        let mut merged = Vec::new();
        let mut used: Vec<bool> = vec![false; candidates.len()];
        for i in 0..candidates.len() {
            if used[i] {
                continue;
            }
            for j in (i + 1)..candidates.len() {
                if used[j] {
                    continue;
                }
                match (&candidates[i], &candidates[j]) {
                    (Candidate::Index(a), Candidate::Index(b)) if a.table == b.table => {
                        if let Some(m) = a.merge(b) {
                            if &m != a && &m != b {
                                merged.push(Candidate::Index(m));
                                used[i] = true;
                                used[j] = true;
                                break;
                            }
                        }
                    }
                    (Candidate::View { view: v1, .. }, Candidate::View { view: v2, .. })
                        if v1.def.tables == v2.def.tables =>
                    {
                        if let Some(def) = pdt_physical::view::merge_views(&v1.def, &v2.def) {
                            let opt = Optimizer::new(self.db);
                            let scratch = Configuration::new();
                            let rows = opt.estimate_view_rows(&scratch, &def);
                            let id = scratch.allocate_view_id();
                            let view = MaterializedView::create(id, def, rows, self.db);
                            let clustered =
                                Index::clustered(id, [pdt_catalog::ColumnId::new(id, 0)]);
                            merged.push(Candidate::View {
                                view,
                                indexes: vec![clustered],
                            });
                            used[i] = true;
                            used[j] = true;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        merged
    }
}

/// Re-optimize only queries that reference any of `affected` tables;
/// everything else keeps its cached plan. (The "atomic configuration"
/// shortcut: cheap, but — as the paper notes — it "introduces
/// additional inaccuracies" because additions can in principle change
/// other plans.) Touched queries go through the shared what-if cache
/// when one is attached: greedy rounds repeatedly trial candidates that
/// leave a query's visible structures unchanged, and those trials cost
/// nothing. The returned `optimizer_calls` counts actual invocations.
fn reopt_affected(
    db: &Database,
    opt: &Optimizer<'_>,
    config: &Configuration,
    workload: &Workload,
    prev: &EvalResult,
    affected: &BTreeSet<TableId>,
    ctx: EvalCtx<'_>,
) -> EvalResult {
    let schema = pdt_physical::PhysicalSchema::new(db, config);
    let model = opt.opts.cost;
    let indices: Vec<usize> = (0..workload.len()).collect();
    // (eval, calls, hit, miss, pending cache insert), in entry order.
    type Entry = (
        pdt_tuner::QueryEval,
        usize,
        bool,
        bool,
        Option<(u128, CacheEntry)>,
    );
    let evals: Vec<Entry> = par_map(ctx.threads, &indices, |_, &i| {
        let entry = &workload.entries[i];
        let q_prev = &prev.per_query[i];
        let touches = entry
            .select
            .as_ref()
            .map(|s| s.tables.iter().any(|t| affected.contains(t)))
            .unwrap_or(false);
        let mut calls = 0;
        let (mut hit, mut miss) = (false, false);
        let mut pending = None;
        let (select_cost, usages) = if touches {
            let q = entry.select.as_ref().expect("touches");
            let cached = ctx.cache.map(|cache| {
                let tables: BTreeSet<TableId> = q.tables.iter().copied().collect();
                (cache, config.signature_for_tables128(&tables))
            });
            match cached.as_ref().and_then(|(c, sig)| c.lookup(i, *sig)) {
                Some(e) => {
                    hit = true;
                    (e.cost, e.usages)
                }
                None => {
                    let plan = opt.optimize(config, q);
                    calls = 1;
                    let usages: std::sync::Arc<[pdt_opt::IndexUsage]> = plan.index_usages.into();
                    if let Some((_, sig)) = cached {
                        miss = true;
                        pending = Some((sig, CacheEntry::plain(plan.cost, usages.clone(), sig)));
                    }
                    (plan.cost, usages)
                }
            }
        } else {
            (q_prev.select_cost, q_prev.usages.clone())
        };
        let shell_cost = entry
            .shell
            .as_ref()
            .map(|s| pdt_tuner::eval::shell_cost(&model, &schema, s))
            .unwrap_or(0.0);
        let q = pdt_tuner::QueryEval {
            select_cost,
            shell_cost,
            usages,
        };
        (q, calls, hit, miss, pending)
    });

    let mut per_query = Vec::with_capacity(evals.len());
    let mut total = 0.0;
    let mut calls = 0;
    let (mut hits, mut misses) = (0u64, 0u64);
    for (i, (q, c, hit, miss, pending)) in evals.into_iter().enumerate() {
        total += workload.entries[i].weight * q.total();
        calls += c;
        hits += u64::from(hit);
        misses += u64::from(miss);
        if let Some((sig, ce)) = pending {
            if let Some(cache) = ctx.cache {
                cache.insert(i, sig, ce);
            }
        }
        per_query.push(q);
    }
    if let Some(cache) = ctx.cache {
        cache.record_traced(hits, misses, ctx.tracer);
    }
    pdt_trace::incr(ctx.tracer, "optimizer.calls", calls as u64);
    pdt_trace::emit(
        ctx.tracer,
        "eval.commit",
        vec![
            ("entries", per_query.len().into()),
            ("calls", calls.into()),
            ("hits", hits.into()),
            ("misses", misses.into()),
            ("cost", total.into()),
        ],
    );
    EvalResult {
        per_query,
        total_cost: total,
        optimizer_calls: calls,
        poison_repairs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::{ColumnStats, ColumnType};
    use pdt_sql::parse_workload;

    fn test_db() -> Database {
        let mut b = Database::builder("t");
        let mk = |name: &str, ndv: f64| pdt_catalog::Column {
            name: name.into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(ndv, 0.0, ndv, 4.0),
        };
        b.add_table(
            "r",
            1_000_000.0,
            vec![
                mk("id", 1_000_000.0),
                mk("a", 10_000.0),
                mk("b", 100.0),
                mk("c", 1_000.0),
            ],
            vec![0],
        );
        b.add_table(
            "s",
            50_000.0,
            vec![mk("y", 50_000.0), mk("w", 500.0)],
            vec![0],
        );
        b.build()
    }

    fn workload(db: &Database, sql: &str) -> Workload {
        Workload::bind(db, &parse_workload(sql).unwrap()).unwrap()
    }

    const SQL: &str = "\
        SELECT r.c FROM r WHERE r.a = 5; \
        SELECT r.a FROM r WHERE r.b = 9; \
        SELECT r.a, s.w FROM r, s WHERE r.a = s.y AND s.w < 30";

    #[test]
    fn advisor_improves_over_base() {
        let db = test_db();
        let w = workload(&db, SQL);
        let report = BaselineAdvisor::new(&db, BaselineOptions::default()).tune(&w);
        assert!(report.best_cost < report.initial_cost);
        assert!(report.improvement_pct() > 0.0);
        assert!(report.candidate_count > 0);
        assert!(report.best_config.index_count() > Configuration::base(&db).index_count());
    }

    #[test]
    fn budget_is_respected() {
        let db = test_db();
        let w = workload(&db, SQL);
        let free = BaselineAdvisor::new(&db, BaselineOptions::default()).tune(&w);
        // Budget half of the *added* space on top of the mandatory base
        // configuration.
        let base_size = Configuration::base(&db).size_bytes(&db);
        let budget = base_size + (free.best_size - base_size) * 0.5;
        let constrained = BaselineAdvisor::new(
            &db,
            BaselineOptions {
                space_budget: Some(budget),
                ..Default::default()
            },
        )
        .tune(&w);
        assert!(constrained.best_size <= budget + 1.0);
        assert!(constrained.best_cost >= free.best_cost * 0.999);
    }

    #[test]
    fn progress_trace_is_monotone_decreasing() {
        let db = test_db();
        let w = workload(&db, SQL);
        let report = BaselineAdvisor::new(&db, BaselineOptions::default()).tune(&w);
        assert!(report.progress.len() >= 2, "at least base + one addition");
        for pair in report.progress.windows(2) {
            assert!(pair[1].best_cost <= pair[0].best_cost);
            assert!(pair[1].optimizer_calls >= pair[0].optimizer_calls);
        }
    }

    #[test]
    fn evaluation_budget_caps_work() {
        let db = test_db();
        let w = workload(&db, SQL);
        let report = BaselineAdvisor::new(
            &db,
            BaselineOptions {
                max_evaluations: 5,
                ..Default::default()
            },
        )
        .tune(&w);
        assert!(report.optimizer_calls <= 7, "{}", report.optimizer_calls);
    }

    #[test]
    fn candidate_cap_limits_per_query_structures() {
        let db = test_db();
        let w = workload(&db, SQL);
        let tight = BaselineAdvisor::new(
            &db,
            BaselineOptions {
                max_candidates_per_query: 1,
                ..Default::default()
            },
        )
        .tune(&w);
        let loose = BaselineAdvisor::new(&db, BaselineOptions::default()).tune(&w);
        assert!(tight.candidate_count <= loose.candidate_count);
    }

    #[test]
    fn index_only_mode_recommends_no_views() {
        let db = test_db();
        let w = workload(
            &db,
            "SELECT r.b, SUM(r.c) FROM r WHERE r.a < 100 GROUP BY r.b",
        );
        let report = BaselineAdvisor::new(
            &db,
            BaselineOptions {
                with_views: false,
                ..Default::default()
            },
        )
        .tune(&w);
        assert_eq!(report.best_config.view_count(), 0);
    }
}
