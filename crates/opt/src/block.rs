//! The logical query block: a bound SPJG query with classified
//! predicates, ready for plan search.

use pdt_catalog::{ColumnId, Database, TableId};
use pdt_expr::scalar::{AggCall, ScalarExpr};
use pdt_expr::{BoundSelect, ClassifiedPredicates, JoinPred};
use pdt_physical::SpjgExpr;
use std::collections::BTreeSet;

/// A normalized single-block SPJG query.
#[derive(Debug, Clone)]
pub struct QueryBlock {
    /// Tables in FROM order.
    pub tables: Vec<TableId>,
    /// Join / range / other conjuncts.
    pub classified: ClassifiedPredicates,
    /// GROUP BY columns.
    pub group_by: BTreeSet<ColumnId>,
    /// Aggregate calls appearing in the projections.
    pub aggregates: Vec<AggCall>,
    /// Full projection expressions.
    pub projections: Vec<ScalarExpr>,
    /// ORDER BY columns with descending flags.
    pub order_by: Vec<(ColumnId, bool)>,
    /// Optional row limit.
    pub top: Option<u64>,
    /// Base (non-aggregate) columns needed in the output.
    pub output_cols: BTreeSet<ColumnId>,
}

impl QueryBlock {
    /// Build a block from a bound SELECT.
    pub fn from_bound(db: &Database, q: &BoundSelect) -> QueryBlock {
        let classified = q.classified(db);
        let mut aggregates = Vec::new();
        let mut output_cols = BTreeSet::new();
        for p in &q.projections {
            collect_projection(p, &mut aggregates, &mut output_cols);
        }
        let group_by: BTreeSet<ColumnId> = q.group_by.iter().copied().collect();
        output_cols.extend(group_by.iter().copied());
        output_cols.extend(q.order_by.iter().map(|(c, _)| *c));
        QueryBlock {
            tables: q.tables.clone(),
            classified,
            group_by,
            aggregates,
            projections: q.projections.clone(),
            order_by: q.order_by.clone(),
            top: q.top,
            output_cols,
        }
    }

    /// True if the block computes aggregates (grouped or scalar).
    pub fn is_grouped(&self) -> bool {
        !self.group_by.is_empty() || !self.aggregates.is_empty()
    }

    /// Columns of `table` needed *above* its access path: output
    /// columns, group/order columns, join columns, and columns of
    /// non-sargable predicates.
    pub fn required_columns(&self, table: TableId) -> BTreeSet<ColumnId> {
        let mut cols: BTreeSet<ColumnId> = self
            .output_cols
            .iter()
            .filter(|c| c.table == table)
            .copied()
            .collect();
        for a in &self.aggregates {
            if let Some(arg) = &a.arg {
                cols.extend(arg.columns().into_iter().filter(|c| c.table == table));
            }
        }
        for j in &self.classified.joins {
            if j.left.table == table {
                cols.insert(j.left);
            }
            if j.right.table == table {
                cols.insert(j.right);
            }
        }
        for o in &self.classified.others {
            cols.extend(o.columns().into_iter().filter(|c| c.table == table));
        }
        cols
    }

    /// The whole query as an SPJG expression (for top-level view
    /// requests and matching).
    pub fn to_spjg(&self) -> SpjgExpr {
        let mut spjg = SpjgExpr {
            tables: self.tables.iter().copied().collect(),
            joins: self.classified.joins.iter().copied().collect(),
            ranges: self.classified.ranges.clone(),
            others: self.classified.others.clone(),
            group_by: self.group_by.clone(),
            aggregates: self.aggregates.clone(),
            output_cols: self.output_cols.clone(),
        };
        spjg.canonicalize();
        spjg
    }

    /// The SPJG expression for a subset of the block's tables: joins,
    /// ranges and others fully contained in the subset; output columns
    /// are those needed upwards — including join columns to tables
    /// outside the subset. Grouping applies only when the subset covers
    /// the whole block.
    pub fn spjg_for_subset(&self, subset: &BTreeSet<TableId>) -> SpjgExpr {
        let full = subset.len() == self.tables.len();
        if full {
            return self.to_spjg();
        }
        let joins: BTreeSet<JoinPred> = self
            .classified
            .joins
            .iter()
            .filter(|j| subset.contains(&j.left.table) && subset.contains(&j.right.table))
            .copied()
            .collect();
        let ranges = self
            .classified
            .ranges
            .iter()
            .filter(|r| subset.contains(&r.column.table))
            .cloned()
            .collect();
        let others = self
            .classified
            .others
            .iter()
            .filter(|o| o.tables().iter().all(|t| subset.contains(t)))
            .cloned()
            .collect();
        let mut output_cols: BTreeSet<ColumnId> = BTreeSet::new();
        for t in subset {
            output_cols.extend(self.required_columns(*t));
        }
        // Join columns to the outside are already in required_columns;
        // aggregate argument columns as well.
        let mut spjg = SpjgExpr {
            tables: subset.clone(),
            joins,
            ranges,
            others,
            group_by: BTreeSet::new(),
            aggregates: Vec::new(),
            output_cols,
        };
        spjg.canonicalize();
        spjg
    }
}

fn collect_projection(e: &ScalarExpr, aggs: &mut Vec<AggCall>, cols: &mut BTreeSet<ColumnId>) {
    match e {
        ScalarExpr::Agg(call) => {
            if !aggs.contains(call) {
                aggs.push((**call).clone());
            }
        }
        ScalarExpr::Column(c) => {
            cols.insert(*c);
        }
        ScalarExpr::Arith { left, right, .. } => {
            collect_projection(left, aggs, cols);
            collect_projection(right, aggs, cols);
        }
        ScalarExpr::Neg(inner) => collect_projection(inner, aggs, cols),
        ScalarExpr::Literal(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::{ColumnStats, ColumnType};
    use pdt_expr::Binder;
    use pdt_sql::parse_statement;

    fn test_db() -> Database {
        let mut b = Database::builder("t");
        let mk = |name: &str| pdt_catalog::Column {
            name: name.into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(100.0, 0.0, 100.0, 4.0),
        };
        b.add_table("r", 1000.0, vec![mk("a"), mk("b"), mk("x")], vec![0]);
        b.add_table("s", 500.0, vec![mk("y"), mk("c")], vec![0]);
        b.add_table("t", 200.0, vec![mk("z"), mk("d")], vec![0]);
        b.build()
    }

    fn block(db: &Database, sql: &str) -> QueryBlock {
        let stmt = parse_statement(sql).unwrap();
        let bound = Binder::new(db).bind(&stmt).unwrap();
        QueryBlock::from_bound(db, bound.as_select().unwrap())
    }

    #[test]
    fn collects_aggregates_and_output_columns() {
        let db = test_db();
        let b = block(
            &db,
            "SELECT r.a, SUM(r.b) FROM r WHERE r.x < 5 GROUP BY r.a ORDER BY r.a",
        );
        assert!(b.is_grouped());
        assert_eq!(b.aggregates.len(), 1);
        // a in output; b only as aggregate argument (not an output base
        // column); x only in a sarg.
        let r = db.table_by_name("r").unwrap();
        assert!(b.output_cols.contains(&r.column_id(0)));
        assert!(!b.output_cols.contains(&r.column_id(1)));
    }

    #[test]
    fn required_columns_include_join_and_agg_args() {
        let db = test_db();
        let b = block(
            &db,
            "SELECT SUM(r.b) FROM r, s WHERE r.x = s.y AND s.c > 2 GROUP BY s.c",
        );
        let r = db.table_by_name("r").unwrap();
        let s = db.table_by_name("s").unwrap();
        let req_r = b.required_columns(r.id);
        assert!(req_r.contains(&r.column_id(1)), "agg arg b");
        assert!(req_r.contains(&r.column_id(2)), "join col x");
        let req_s = b.required_columns(s.id);
        assert!(req_s.contains(&s.column_id(0)), "join col y");
        assert!(req_s.contains(&s.column_id(1)), "group col c");
    }

    #[test]
    fn subset_spjg_keeps_internal_joins_only() {
        let db = test_db();
        let b = block(
            &db,
            "SELECT r.a FROM r, s, t WHERE r.x = s.y AND s.c = t.z AND r.a < 10",
        );
        let r = db.table_by_name("r").unwrap().id;
        let s = db.table_by_name("s").unwrap().id;
        let sub = b.spjg_for_subset(&[r, s].into());
        assert_eq!(sub.joins.len(), 1);
        assert_eq!(sub.ranges.len(), 1);
        // s.c joins to the outside: must be exported.
        let s_t = db.table_by_name("s").unwrap();
        assert!(sub.output_cols.contains(&s_t.column_id(1)));
        assert!(sub.group_by.is_empty());
    }

    #[test]
    fn full_subset_includes_grouping() {
        let db = test_db();
        let b = block(&db, "SELECT r.a, COUNT(*) FROM r GROUP BY r.a");
        let r = db.table_by_name("r").unwrap().id;
        let spjg = b.spjg_for_subset(&[r].into());
        assert!(!spjg.group_by.is_empty());
        assert_eq!(spjg.aggregates.len(), 1);
    }
}
