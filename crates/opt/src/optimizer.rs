//! The optimizer driver: binds blocks, enumerates join orders
//! (left-deep dynamic programming), matches materialized views, and
//! plans aggregation/ordering — invoking the [`RequestSink`] at every
//! index- and view-request point.

use crate::access::{best_access_path, AccessPath};
use crate::block::QueryBlock;
use crate::card::{group_count, join_selectivity, subset_rows};
use crate::cost::CostModel;
use crate::plan::{IndexUsage, Op, PhysPlan, PlanNode};
use crate::request::{IndexRequest, NullSink, RequestSink, ViewRequest};
use pdt_catalog::{ColumnId, Database, TableId};
use pdt_expr::{BoundSelect, ClassifiedPredicates, Sarg, SargablePred};
use pdt_physical::{Configuration, MaterializedView, PhysicalSchema, SpjgExpr, ViewMatch};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global count of *real* plan searches ([`Optimizer::optimize`]
/// invocations). The derived-costing layer keeps its logical counters
/// mode-invariant (so reports stay byte-identical with derivation on or
/// off); this counter is the ground truth beneath them — benches diff
/// it across runs to measure how many plan searches derivation actually
/// skipped. Monotonic; meaningful only as a delta within one process.
static INVOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Current value of the process-global invocation counter.
pub fn invocation_count() -> u64 {
    INVOCATIONS.load(Ordering::Relaxed)
}

/// Optimizer tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerOptions {
    /// Largest FROM-list size optimized with exhaustive left-deep DP;
    /// larger queries fall back to a greedy join order.
    pub max_dp_tables: usize,
    /// Whether to issue view requests for proper join subsets (the
    /// paper does; turning it off reproduces index-only tuning).
    pub subset_view_requests: bool,
    /// Cost model constants.
    pub cost: CostModel,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            max_dp_tables: 10,
            subset_view_requests: true,
            cost: CostModel::default(),
        }
    }
}

/// The cost-based optimizer.
pub struct Optimizer<'a> {
    pub db: &'a Database,
    pub opts: OptimizerOptions,
}

#[derive(Clone)]
struct SubPlan {
    node: PlanNode,
    cost: f64,
    rows: f64,
    usages: Vec<IndexUsage>,
    /// Order provided by the subplan output (satisfied request order
    /// for single-table plans; joins destroy order in this engine).
    provides_order: bool,
}

impl<'a> Optimizer<'a> {
    pub fn new(db: &'a Database) -> Optimizer<'a> {
        Optimizer {
            db,
            opts: OptimizerOptions::default(),
        }
    }

    pub fn with_options(db: &'a Database, opts: OptimizerOptions) -> Optimizer<'a> {
        Optimizer { db, opts }
    }

    /// Optimize under a fixed configuration (no instrumentation).
    pub fn optimize(&self, config: &Configuration, q: &BoundSelect) -> PhysPlan {
        INVOCATIONS.fetch_add(1, Ordering::Relaxed);
        let mut working = config.clone();
        self.optimize_with_sink(&mut working, q, &mut NullSink)
    }

    /// Optimize, invoking `sink` at every index/view request. The sink
    /// may extend `config` with hypothetical structures mid-flight
    /// (Fig. 2's suspend/analyze/resume loop).
    pub fn optimize_with_sink(
        &self,
        config: &mut Configuration,
        q: &BoundSelect,
        sink: &mut dyn RequestSink,
    ) -> PhysPlan {
        let block = QueryBlock::from_bound(self.db, q);
        self.optimize_block(config, &block, sink)
    }

    /// Estimated output cardinality of an SPJG expression (used when
    /// simulating a view: "we use the cardinality module of the
    /// optimizer itself to estimate the number of tuples returned by
    /// the view definition", §3.3.1).
    pub fn estimate_view_rows(&self, config: &Configuration, def: &SpjgExpr) -> f64 {
        let schema = PhysicalSchema::new(self.db, config);
        let preds = ClassifiedPredicates {
            joins: def.joins.iter().copied().collect(),
            ranges: def.ranges.clone(),
            others: def.others.clone(),
        };
        let rows = subset_rows(&schema, &def.tables, &preds);
        if def.is_grouped() {
            group_count(&schema, rows, &def.group_by)
        } else {
            rows
        }
    }

    fn optimize_block(
        &self,
        config: &mut Configuration,
        block: &QueryBlock,
        sink: &mut dyn RequestSink,
    ) -> PhysPlan {
        let n = block.tables.len();

        // ---- join-order search over base tables ---------------------
        let base = if n <= self.opts.max_dp_tables {
            self.dp_join(config, block, sink)
        } else {
            self.greedy_join(config, block, sink)
        };

        // ---- grouping / ordering / projection on the base plan ------
        let mut best = self.finish_plan(config, block, base);

        // ---- whole-query view alternatives ---------------------------
        let full_spjg = block.to_spjg();
        sink.on_view_request(
            &ViewRequest {
                spjg: full_spjg.clone(),
                top_level: true,
            },
            self.db,
            config,
        );
        let matches: Vec<(ViewMatch, f64)> = config
            .usable_views()
            .filter_map(|v| v.try_match(&full_spjg).map(|m| (m, v.rows)))
            .collect();
        for (m, view_rows) in matches {
            if let Some(candidate) = self.view_plan(config, block, &m, view_rows, sink) {
                if candidate.cost < best.cost {
                    best = candidate;
                }
            }
        }
        best
    }

    /// Finish a pre-aggregation subplan: grouping, ordering,
    /// projection. (Plans from exact grouped view matches never pass
    /// through here — `view_plan` finishes those itself.)
    fn finish_plan(&self, config: &Configuration, block: &QueryBlock, sub: SubPlan) -> PhysPlan {
        let schema = PhysicalSchema::new(self.db, config);
        let model = &self.opts.cost;
        let mut node = sub.node;
        let mut cost = node.cost;
        let mut rows = sub.rows;
        let mut ordered = sub.provides_order;

        if block.is_grouped() {
            let groups = group_count(&schema, rows, &block.group_by);
            let agg_cost = model.hash_aggregate(rows, groups);
            cost += agg_cost.total();
            node = PlanNode::unary(
                Op::HashAggregate {
                    groups: block.group_by.len(),
                },
                cost,
                groups,
                node,
            );
            rows = groups;
            ordered = false;
        }

        if !block.order_by.is_empty() && !ordered {
            let width: f64 = block
                .output_cols
                .iter()
                .map(|c| schema.column_width(*c))
                .sum::<f64>()
                .max(8.0);
            let s = model.sort(rows, width);
            cost += s.total();
            node = PlanNode::unary(
                Op::Sort {
                    columns: block.order_by.clone(),
                },
                cost,
                rows,
                node,
            );
        }

        if let Some(k) = block.top {
            rows = rows.min(k as f64);
        }
        cost += rows * model.cpu_tuple;
        node = PlanNode::unary(Op::Project, cost, rows, node);

        PhysPlan {
            root: node,
            cost,
            rows,
            index_usages: sub.usages,
        }
    }

    /// Build the access plan for a query rewritten over a matched view.
    fn view_plan(
        &self,
        config: &mut Configuration,
        block: &QueryBlock,
        m: &ViewMatch,
        view_rows: f64,
        sink: &mut dyn RequestSink,
    ) -> Option<PhysPlan> {
        let model = &self.opts.cost;

        // Columns of the view we need in the output.
        let mut additional: BTreeSet<ColumnId> = m
            .base_map
            .iter()
            .map(|(_, ord)| ColumnId::new(m.view_id, *ord))
            .collect();
        additional.extend(
            m.agg_map
                .iter()
                .map(|(_, ord)| ColumnId::new(m.view_id, *ord)),
        );
        let order: Vec<(ColumnId, bool)> = if m.regroup {
            Vec::new()
        } else {
            block
                .order_by
                .iter()
                .filter_map(|(c, d)| {
                    m.base_map
                        .iter()
                        .find(|(b, _)| b == c)
                        .map(|(_, ord)| (ColumnId::new(m.view_id, *ord), *d))
                })
                .collect()
        };
        let order_complete = order.len() == block.order_by.len();

        let req = IndexRequest {
            table: m.view_id,
            sargable: m.residual_ranges.clone(),
            non_sargable: m
                .residual_others
                .iter()
                .map(|o| (o.columns(), o.selectivity))
                .collect(),
            order: if order_complete { order } else { Vec::new() },
            additional,
            input_rows: view_rows,
        };
        sink.on_index_request(&req, self.db, config);
        let schema = PhysicalSchema::new(self.db, config);
        // The view may have been deleted meanwhile (defensive).
        config.view(m.view_id)?;
        let access = best_access_path(model, &schema, &req);

        let mut node = access.node;
        let mut cost = access.cost.total();
        let mut rows = access.rows;
        let mut ordered = access.provides_order && order_complete && !block.order_by.is_empty();

        if m.regroup {
            let group_cols: BTreeSet<ColumnId> = m.regroup_cols.iter().copied().collect();
            let groups = group_count(&schema, rows, &group_cols);
            let agg = model.hash_aggregate(rows, groups);
            cost += agg.total();
            node = PlanNode::unary(
                Op::HashAggregate {
                    groups: group_cols.len(),
                },
                cost,
                groups,
                node,
            );
            rows = groups;
            ordered = false;
        }

        if !block.order_by.is_empty() && !ordered {
            let s = model.sort(rows, 64.0);
            cost += s.total();
            node = PlanNode::unary(
                Op::Sort {
                    columns: block.order_by.clone(),
                },
                cost,
                rows,
                node,
            );
        }
        if let Some(k) = block.top {
            rows = rows.min(k as f64);
        }
        cost += rows * model.cpu_tuple;
        node = PlanNode::unary(Op::Project, cost, rows, node);

        Some(PhysPlan {
            root: node,
            cost,
            rows,
            index_usages: access.usages,
        })
    }

    // -----------------------------------------------------------------
    // Join enumeration
    // -----------------------------------------------------------------

    /// Build the access-path request for a single table inside the
    /// block, with optional parameterized join sargs (for the inner
    /// side of an index nested-loops join).
    fn table_request(
        &self,
        config: &Configuration,
        block: &QueryBlock,
        table: TableId,
        join_params: &[(ColumnId, f64)],
        order: Vec<(ColumnId, bool)>,
    ) -> IndexRequest {
        let schema = PhysicalSchema::new(self.db, config);
        let mut sargable: Vec<SargablePred> = block.classified.ranges_on(table).cloned().collect();
        for (col, sel) in join_params {
            if !sargable.iter().any(|s| s.column == *col) {
                sargable.push(SargablePred {
                    column: *col,
                    sarg: Sarg::Param { selectivity: *sel },
                });
            }
        }
        let non_sargable = block
            .classified
            .others_local_to(table)
            .map(|o| (o.columns(), o.selectivity))
            .collect();
        IndexRequest {
            table,
            sargable,
            non_sargable,
            order,
            additional: block.required_columns(table),
            input_rows: schema.rows(table),
        }
    }

    /// Access path for one table, issuing the index request first.
    fn table_access(
        &self,
        config: &mut Configuration,
        block: &QueryBlock,
        table: TableId,
        join_params: &[(ColumnId, f64)],
        order: Vec<(ColumnId, bool)>,
        sink: &mut dyn RequestSink,
    ) -> AccessPath {
        let req = self.table_request(config, block, table, join_params, order);
        sink.on_index_request(&req, self.db, config);
        let schema = PhysicalSchema::new(self.db, config);
        best_access_path(&self.opts.cost, &schema, &req)
    }

    /// The order request a single-table plan should try to satisfy:
    /// the ORDER BY for plain queries, the grouping columns for
    /// aggregations (enabling sort-free stream aggregation — modeled
    /// as order-preserving hash aggregation input here).
    fn leaf_order(&self, block: &QueryBlock) -> Vec<(ColumnId, bool)> {
        if block.tables.len() != 1 {
            return Vec::new();
        }
        if block.is_grouped() {
            Vec::new()
        } else {
            block.order_by.clone()
        }
    }

    fn single_table_subplan(
        &self,
        config: &mut Configuration,
        block: &QueryBlock,
        table: TableId,
        sink: &mut dyn RequestSink,
    ) -> SubPlan {
        let order = self.leaf_order(block);
        let access = self.table_access(config, block, table, &[], order, sink);
        SubPlan {
            cost: access.cost.total(),
            rows: access.rows,
            provides_order: access.provides_order && !block.order_by.is_empty(),
            node: access.node,
            usages: access.usages,
        }
    }

    fn dp_join(
        &self,
        config: &mut Configuration,
        block: &QueryBlock,
        sink: &mut dyn RequestSink,
    ) -> SubPlan {
        let n = block.tables.len();
        if n == 1 {
            return self.single_table_subplan(config, block, block.tables[0], sink);
        }
        let full_mask: u64 = (1 << n) - 1;
        let mut dp: HashMap<u64, SubPlan> = HashMap::with_capacity(1 << n);

        for (i, &t) in block.tables.iter().enumerate() {
            let sub = self.single_table_subplan(config, block, t, sink);
            dp.insert(1 << i, sub);
        }

        for mask in 2u64..=full_mask {
            if mask.count_ones() < 2 {
                continue;
            }
            let subset: BTreeSet<TableId> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| block.tables[i])
                .collect();

            // View request for this SPJG sub-query (paper §2).
            let sub_spjg = if self.opts.subset_view_requests && mask != full_mask {
                let spjg = block.spjg_for_subset(&subset);
                sink.on_view_request(
                    &ViewRequest {
                        spjg: spjg.clone(),
                        top_level: false,
                    },
                    self.db,
                    config,
                );
                Some(spjg)
            } else {
                None
            };

            let mut best: Option<SubPlan> = None;

            // Materialized views covering exactly this subset can
            // replace the whole join sub-expression.
            if let Some(spjg) = &sub_spjg {
                let matches: Vec<(pdt_physical::ViewMatch, f64)> = config
                    .usable_views()
                    .filter(|v| v.def.tables == subset)
                    .filter_map(|v| v.try_match(spjg).map(|m| (m, v.rows)))
                    .collect();
                for (m, view_rows) in matches {
                    if let Some(cand) = self.subset_view_subplan(config, &m, view_rows, sink) {
                        if best.as_ref().is_none_or(|b| cand.cost < b.cost) {
                            best = Some(cand);
                        }
                    }
                }
            }
            for i in 0..n {
                let bit = 1u64 << i;
                if mask & bit == 0 {
                    continue;
                }
                let rest = mask & !bit;
                if rest == 0 {
                    continue;
                }
                let Some(outer) = dp.get(&rest).cloned() else {
                    continue;
                };
                let inner_table = block.tables[i];
                // Prefer connected joins; cross products only when the
                // rest has no join edge to this table.
                let join_cols: Vec<(ColumnId, f64)> = {
                    let schema = PhysicalSchema::new(self.db, config);
                    block
                        .classified
                        .joins
                        .iter()
                        .filter_map(|j| {
                            let (lt, rt) = (j.left.table, j.right.table);
                            let rest_tables: BTreeSet<TableId> = (0..n)
                                .filter(|k| rest & (1 << k) != 0)
                                .map(|k| block.tables[k])
                                .collect();
                            if lt == inner_table && rest_tables.contains(&rt) {
                                Some((j.left, join_selectivity(&schema, j.left, j.right)))
                            } else if rt == inner_table && rest_tables.contains(&lt) {
                                Some((j.right, join_selectivity(&schema, j.left, j.right)))
                            } else {
                                None
                            }
                        })
                        .collect()
                };
                let out_rows = subset_rows(
                    &PhysicalSchema::new(self.db, config),
                    &subset,
                    &block.classified,
                );

                for cand in self.join_candidates(
                    config,
                    block,
                    &outer,
                    inner_table,
                    &join_cols,
                    out_rows,
                    sink,
                ) {
                    if best.as_ref().is_none_or(|b| cand.cost < b.cost) {
                        best = Some(cand);
                    }
                }
            }
            if let Some(b) = best {
                dp.insert(mask, b);
            }
        }
        dp.remove(&full_mask).expect("full join plan exists")
    }

    /// Access a matched subset view as a join-subexpression replacement
    /// (ungrouped matches only — grouped views never match subset SPJGs
    /// because those carry no grouping).
    fn subset_view_subplan(
        &self,
        config: &mut Configuration,
        m: &pdt_physical::ViewMatch,
        view_rows: f64,
        sink: &mut dyn RequestSink,
    ) -> Option<SubPlan> {
        if m.regroup {
            return None;
        }
        let additional: BTreeSet<ColumnId> = m
            .base_map
            .iter()
            .map(|(_, ord)| ColumnId::new(m.view_id, *ord))
            .collect();
        let req = IndexRequest {
            table: m.view_id,
            sargable: m.residual_ranges.clone(),
            non_sargable: m
                .residual_others
                .iter()
                .map(|o| (o.columns(), o.selectivity))
                .collect(),
            order: Vec::new(),
            additional,
            input_rows: view_rows,
        };
        sink.on_index_request(&req, self.db, config);
        config.view(m.view_id)?;
        let schema = PhysicalSchema::new(self.db, config);
        let access = best_access_path(&self.opts.cost, &schema, &req);
        Some(SubPlan {
            cost: access.cost.total(),
            rows: access.rows,
            provides_order: false,
            node: access.node,
            usages: access.usages,
        })
    }

    /// Hash-join and index-NLJ candidates for `outer ⋈ inner_table`.
    #[allow(clippy::too_many_arguments)]
    fn join_candidates(
        &self,
        config: &mut Configuration,
        block: &QueryBlock,
        outer: &SubPlan,
        inner_table: TableId,
        join_cols: &[(ColumnId, f64)],
        out_rows: f64,
        sink: &mut dyn RequestSink,
    ) -> Vec<SubPlan> {
        let model = &self.opts.cost;
        let mut cands = Vec::with_capacity(2);

        // Hash join: full access of inner (local predicates only).
        {
            let inner = self.table_access(config, block, inner_table, &[], Vec::new(), sink);
            let (build_rows, probe_rows) = if inner.rows < outer.rows {
                (inner.rows, outer.rows)
            } else {
                (outer.rows, inner.rows)
            };
            let schema = PhysicalSchema::new(self.db, config);
            let jc = model.hash_join(build_rows, probe_rows, schema.row_width(inner_table));
            let cost = outer.cost + inner.cost.total() + jc.total() + out_rows * model.cpu_tuple;
            let mut usages = outer.usages.clone();
            usages.extend(inner.usages);
            cands.push(SubPlan {
                node: PlanNode::binary(
                    Op::HashJoin,
                    cost,
                    out_rows,
                    outer.node.clone(),
                    inner.node,
                ),
                cost,
                rows: out_rows,
                usages,
                provides_order: false,
            });
        }

        // Index nested-loops: parameterized inner executed per outer row.
        if !join_cols.is_empty() {
            let inner = self.table_access(config, block, inner_table, join_cols, Vec::new(), sink);
            let per_exec = inner.cost.total();
            let cost = outer.cost + outer.rows * per_exec + out_rows * model.cpu_tuple;
            let mut usages = outer.usages.clone();
            for mut u in inner.usages {
                // Scale the per-execution usage to the whole join.
                u.access_io *= outer.rows.max(1.0);
                u.access_cpu *= outer.rows.max(1.0);
                u.rows *= outer.rows.max(1.0);
                u.resid_filter_cpu *= outer.rows.max(1.0);
                u.executions *= outer.rows.max(1.0);
                usages.push(u);
            }
            cands.push(SubPlan {
                node: PlanNode::binary(
                    Op::NestedLoopJoin,
                    cost,
                    out_rows,
                    outer.node.clone(),
                    inner.node,
                ),
                cost,
                rows: out_rows,
                usages,
                provides_order: false,
            });
        }
        cands
    }

    /// Greedy left-deep join order for very large FROM lists.
    fn greedy_join(
        &self,
        config: &mut Configuration,
        block: &QueryBlock,
        sink: &mut dyn RequestSink,
    ) -> SubPlan {
        let n = block.tables.len();
        // Start from the table with the smallest filtered cardinality.
        let schema_rows = |config: &Configuration, t: TableId| {
            let schema = PhysicalSchema::new(self.db, config);
            schema.rows(t) * block.classified.local_selectivity(self.db, t)
        };
        let mut remaining: Vec<usize> = (0..n).collect();
        remaining.sort_by(|a, b| {
            schema_rows(config, block.tables[*a]).total_cmp(&schema_rows(config, block.tables[*b]))
        });
        let first = remaining.remove(0);
        let mut joined: BTreeSet<TableId> = [block.tables[first]].into();
        let mut current = self.single_table_subplan(config, block, block.tables[first], sink);

        while !remaining.is_empty() {
            // Next: the connected table minimizing the joined cardinality.
            let mut best_idx = 0usize;
            let mut best_rows = f64::INFINITY;
            for (pos, &i) in remaining.iter().enumerate() {
                let t = block.tables[i];
                let connected = block.classified.joins.iter().any(|j| {
                    (j.left.table == t && joined.contains(&j.right.table))
                        || (j.right.table == t && joined.contains(&j.left.table))
                });
                let mut subset = joined.clone();
                subset.insert(t);
                let schema = PhysicalSchema::new(self.db, config);
                let rows = subset_rows(&schema, &subset, &block.classified)
                    * if connected { 1.0 } else { 1e6 };
                if rows < best_rows {
                    best_rows = rows;
                    best_idx = pos;
                }
            }
            let i = remaining.remove(best_idx);
            let t = block.tables[i];
            let join_cols: Vec<(ColumnId, f64)> = {
                let schema = PhysicalSchema::new(self.db, config);
                block
                    .classified
                    .joins
                    .iter()
                    .filter_map(|j| {
                        if j.left.table == t && joined.contains(&j.right.table) {
                            Some((j.left, join_selectivity(&schema, j.left, j.right)))
                        } else if j.right.table == t && joined.contains(&j.left.table) {
                            Some((j.right, join_selectivity(&schema, j.left, j.right)))
                        } else {
                            None
                        }
                    })
                    .collect()
            };
            joined.insert(t);
            let out_rows = subset_rows(
                &PhysicalSchema::new(self.db, config),
                &joined,
                &block.classified,
            );
            let cands =
                self.join_candidates(config, block, &current, t, &join_cols, out_rows, sink);
            current = cands
                .into_iter()
                .min_by(|a, b| a.cost.total_cmp(&b.cost))
                .expect("hash join always available");
        }
        current
    }
}

/// The structure footprint of a plan: 128-bit content signatures of
/// every physical structure its access paths touch — the used indexes,
/// plus (for indexes over views) the views those indexes serve. Matches
/// the per-structure encoding of [`Configuration::signature128`], so a
/// footprint can be tested for survival against any configuration's
/// relevant-structure set. Sorted and deduplicated.
pub fn plan_footprint(usages: &[IndexUsage], config: &Configuration) -> Vec<u128> {
    let mut out: Vec<u128> = Vec::with_capacity(usages.len());
    for u in usages {
        out.push(pdt_physical::index_sig128(&u.index));
        if u.index.table.is_view() {
            if let Some(v) = config.view(u.index.table) {
                out.push(pdt_physical::view_sig128(v.id, v));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// INUM/CoPhy-style plan re-pricing: re-validate a cached plan's access
/// paths against a new configuration and carry its cost over without a
/// plan search. Each used index must still exist, and indexes over
/// views need their view present and usable (clustered index in
/// place). When every access path survives, the §3.3.2-style local
/// patch is empty — no structure the plan reads changed under this
/// catalog model — so the cached cost is returned unchanged. `None`
/// means an access path was invalidated and the caller must fall back
/// to a real optimizer invocation.
pub fn reprice_plan(
    cached_cost: f64,
    usages: &[IndexUsage],
    config: &Configuration,
) -> Option<f64> {
    for u in usages {
        if !config.contains_index(&u.index) {
            return None;
        }
        if u.index.table.is_view()
            && (config.view(u.index.table).is_none()
                || config.clustered_index_on(u.index.table).is_none())
        {
            return None;
        }
    }
    Some(cached_cost)
}

/// Create a materialized view for a definition: estimate its rows with
/// the optimizer's cardinality module and register it (without any
/// index — callers add a clustered index to make it usable).
pub fn simulate_view(opt: &Optimizer<'_>, config: &mut Configuration, def: SpjgExpr) -> TableId {
    if let Some(v) = config.find_view_by_def(&def) {
        return v.id;
    }
    let rows = opt.estimate_view_rows(config, &def);
    let id = config.allocate_view_id();
    config.add_view(MaterializedView::create(id, def, rows, opt.db));
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::CountingSink;
    use pdt_catalog::{ColumnStats, ColumnType};
    use pdt_expr::Binder;
    use pdt_physical::Index;
    use pdt_sql::parse_statement;

    fn test_db() -> Database {
        let mut b = Database::builder("t");
        let mk = |name: &str, ndv: f64| pdt_catalog::Column {
            name: name.into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(ndv, 0.0, ndv, 4.0),
        };
        let fact = b.add_table(
            "fact",
            1_000_000.0,
            vec![
                mk("id", 1_000_000.0),
                mk("fk1", 1_000.0),
                mk("fk2", 100.0),
                mk("v", 10_000.0),
                mk("w", 50.0),
            ],
            vec![0],
        );
        let d1 = b.add_table(
            "dim1",
            1_000.0,
            vec![mk("pk", 1_000.0), mk("attr", 20.0)],
            vec![0],
        );
        let d2 = b.add_table(
            "dim2",
            100.0,
            vec![mk("pk", 100.0), mk("attr", 5.0)],
            vec![0],
        );
        b.add_foreign_key(fact, 1, d1, 0);
        b.add_foreign_key(fact, 2, d2, 0);
        b.build()
    }

    fn plan_sql(db: &Database, config: &Configuration, sql: &str) -> PhysPlan {
        let stmt = parse_statement(sql).unwrap();
        let bound = Binder::new(db).bind(&stmt).unwrap();
        Optimizer::new(db).optimize(config, bound.as_select().unwrap())
    }

    #[test]
    fn single_table_plan_costs_less_with_index() {
        let db = test_db();
        let base = Configuration::base(&db);
        let sql = "SELECT fact.v FROM fact WHERE fact.fk1 = 7";
        let p0 = plan_sql(&db, &base, sql);
        let mut with_ix = base.clone();
        let t = db.table_by_name("fact").unwrap();
        with_ix.add_index(Index::new(t.id, [t.column_id(1)], [t.column_id(3)]));
        let p1 = plan_sql(&db, &with_ix, sql);
        assert!(
            p1.cost < p0.cost / 10.0,
            "index should speed up: {} vs {}",
            p1.cost,
            p0.cost
        );
        assert!(p1.index_usages.iter().any(|u| !u.index.clustered));
    }

    #[test]
    fn join_query_produces_join_plan() {
        let db = test_db();
        let base = Configuration::base(&db);
        let p = plan_sql(
            &db,
            &base,
            "SELECT fact.v, dim1.attr FROM fact, dim1 \
             WHERE fact.fk1 = dim1.pk AND dim1.attr = 3",
        );
        let mut joins = 0;
        p.root.walk(&mut |n| {
            if matches!(n.op, Op::HashJoin | Op::NestedLoopJoin) {
                joins += 1;
            }
        });
        assert_eq!(joins, 1);
        assert!(p.rows > 0.0);
    }

    #[test]
    fn three_way_join_dp() {
        let db = test_db();
        let base = Configuration::base(&db);
        let p = plan_sql(
            &db,
            &base,
            "SELECT fact.v FROM fact, dim1, dim2 \
             WHERE fact.fk1 = dim1.pk AND fact.fk2 = dim2.pk \
             AND dim1.attr = 3 AND dim2.attr = 1",
        );
        let mut joins = 0;
        p.root.walk(&mut |n| {
            if matches!(n.op, Op::HashJoin | Op::NestedLoopJoin) {
                joins += 1;
            }
        });
        assert_eq!(joins, 2);
    }

    #[test]
    fn index_nlj_wins_with_join_index() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let fact = db.table_by_name("fact").unwrap();
        // Covering join index on the fact foreign key.
        config.add_index(Index::new(
            fact.id,
            [fact.column_id(1)],
            [fact.column_id(3)],
        ));
        let p = plan_sql(
            &db,
            &config,
            "SELECT fact.v FROM fact, dim1 \
             WHERE fact.fk1 = dim1.pk AND dim1.attr = 3",
        );
        let mut has_nlj = false;
        p.root.walk(&mut |n| {
            if matches!(n.op, Op::NestedLoopJoin) {
                has_nlj = true;
            }
        });
        assert!(has_nlj, "expected index NLJ:\n{}", p.explain());
    }

    #[test]
    fn grouped_query_aggregates() {
        let db = test_db();
        let base = Configuration::base(&db);
        let p = plan_sql(
            &db,
            &base,
            "SELECT fact.fk2, SUM(fact.v) FROM fact GROUP BY fact.fk2",
        );
        let mut has_agg = false;
        p.root.walk(&mut |n| {
            if matches!(n.op, Op::HashAggregate { .. }) {
                has_agg = true;
            }
        });
        assert!(has_agg);
        assert!(p.rows <= 100.0 + 1.0);
    }

    #[test]
    fn counting_sink_sees_requests() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let stmt = parse_statement(
            "SELECT fact.v FROM fact, dim1, dim2 \
             WHERE fact.fk1 = dim1.pk AND fact.fk2 = dim2.pk",
        )
        .unwrap();
        let bound = Binder::new(&db).bind(&stmt).unwrap();
        let mut sink = CountingSink::default();
        Optimizer::new(&db).optimize_with_sink(&mut config, bound.as_select().unwrap(), &mut sink);
        assert!(sink.index_requests >= 3, "{:?}", sink);
        // Subsets of size 2 (three of them) plus the full query.
        assert!(sink.view_requests >= 4, "{:?}", sink);
    }

    #[test]
    fn exact_view_match_wins() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let stmt = parse_statement(
            "SELECT fact.fk2, SUM(fact.v) FROM fact WHERE fact.w = 3 GROUP BY fact.fk2",
        )
        .unwrap();
        let bound = Binder::new(&db).bind(&stmt).unwrap();
        let opt = Optimizer::new(&db);
        let baseline = opt.optimize(&config, bound.as_select().unwrap());

        // Simulate exactly this query as a view + clustered index.
        let block = QueryBlock::from_bound(&db, bound.as_select().unwrap());
        let def = block.to_spjg();
        let vid = simulate_view(&opt, &mut config, def);
        config.add_index(Index::clustered(vid, [ColumnId::new(vid, 0)]));

        let with_view = opt.optimize(&config, bound.as_select().unwrap());
        assert!(
            with_view.cost < baseline.cost / 50.0,
            "view should collapse the plan: {} vs {}",
            with_view.cost,
            baseline.cost
        );
        assert!(with_view
            .index_usages
            .iter()
            .any(|u| u.index.table.is_view()));
    }

    #[test]
    fn view_rows_estimated_with_grouping() {
        let db = test_db();
        let config = Configuration::base(&db);
        let opt = Optimizer::new(&db);
        let fact = db.table_by_name("fact").unwrap();
        let def = SpjgExpr {
            tables: [fact.id].into(),
            group_by: [fact.column_id(2)].into(),
            aggregates: vec![],
            output_cols: [fact.column_id(2)].into(),
            ..Default::default()
        };
        let rows = opt.estimate_view_rows(&config, &def);
        assert!((rows - 100.0).abs() < 2.0, "rows={rows}");
    }

    #[test]
    fn order_by_adds_sort_unless_index_provides() {
        let db = test_db();
        let base = Configuration::base(&db);
        let p = plan_sql(
            &db,
            &base,
            "SELECT fact.v FROM fact WHERE fact.fk2 = 5 ORDER BY fact.v",
        );
        let mut has_sort = false;
        p.root.walk(&mut |n| {
            if matches!(n.op, Op::Sort { .. }) {
                has_sort = true;
            }
        });
        assert!(has_sort);

        let mut config = base.clone();
        let fact = db.table_by_name("fact").unwrap();
        config.add_index(Index::new(
            fact.id,
            [fact.column_id(2), fact.column_id(3)],
            [],
        ));
        let p2 = plan_sql(
            &db,
            &config,
            "SELECT fact.v FROM fact WHERE fact.fk2 = 5 ORDER BY fact.v",
        );
        let mut has_sort2 = false;
        p2.root.walk(&mut |n| {
            if matches!(n.op, Op::Sort { .. }) {
                has_sort2 = true;
            }
        });
        assert!(
            !has_sort2,
            "eq-prefix + order column avoids sort:\n{}",
            p2.explain()
        );
        assert!(p2.cost <= p.cost);
    }

    #[test]
    fn greedy_join_handles_many_tables() {
        // 3 tables with max_dp_tables = 2 forces the greedy path.
        let db = test_db();
        let base = Configuration::base(&db);
        let stmt = parse_statement(
            "SELECT fact.v FROM fact, dim1, dim2 \
             WHERE fact.fk1 = dim1.pk AND fact.fk2 = dim2.pk",
        )
        .unwrap();
        let bound = Binder::new(&db).bind(&stmt).unwrap();
        let opt = Optimizer::with_options(
            &db,
            OptimizerOptions {
                max_dp_tables: 2,
                ..Default::default()
            },
        );
        let p = opt.optimize(&base, bound.as_select().unwrap());
        let mut joins = 0;
        p.root.walk(&mut |n| {
            if matches!(n.op, Op::HashJoin | Op::NestedLoopJoin) {
                joins += 1;
            }
        });
        assert_eq!(joins, 2);
    }

    #[test]
    fn subset_view_replaces_join_subexpression() {
        // A view over {fact, dim1} should serve the {fact, dim1} part
        // of a three-table query, leaving one join to dim2.
        let db = test_db();
        let mut config = Configuration::base(&db);
        let sql = "SELECT fact.v FROM fact, dim1, dim2 \
                   WHERE fact.fk1 = dim1.pk AND fact.fk2 = dim2.pk AND dim1.attr = 3";
        let stmt = parse_statement(sql).unwrap();
        let bound = Binder::new(&db).bind(&stmt).unwrap();
        let opt = Optimizer::new(&db);
        let without = opt.optimize(&config, bound.as_select().unwrap());

        // Build the exact {fact, dim1} subset SPJG and simulate it.
        let block = QueryBlock::from_bound(&db, bound.as_select().unwrap());
        let fact = db.table_by_name("fact").unwrap().id;
        let dim1 = db.table_by_name("dim1").unwrap().id;
        let sub = block.spjg_for_subset(&[fact, dim1].into());
        let vid = simulate_view(&opt, &mut config, sub);
        config.add_index(Index::clustered(vid, [ColumnId::new(vid, 0)]));

        let with_view = opt.optimize(&config, bound.as_select().unwrap());
        assert!(
            with_view.cost < without.cost,
            "subset view should pay off: {} vs {}",
            with_view.cost,
            without.cost
        );
        assert!(
            with_view.index_usages.iter().any(|u| u.index.table == vid),
            "the plan must read the view:\n{}",
            with_view.explain()
        );
        // Exactly one join remains (view ⋈ dim2).
        let mut joins = 0;
        with_view.root.walk(&mut |n| {
            if matches!(n.op, Op::HashJoin | Op::NestedLoopJoin) {
                joins += 1;
            }
        });
        assert_eq!(joins, 1, "{}", with_view.explain());
    }

    #[test]
    fn nlj_inner_usages_are_scaled_to_the_whole_join() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let fact = db.table_by_name("fact").unwrap();
        config.add_index(Index::new(
            fact.id,
            [fact.column_id(1)],
            [fact.column_id(3)],
        ));
        let p = plan_sql(
            &db,
            &config,
            "SELECT fact.v FROM fact, dim1 \
             WHERE fact.fk1 = dim1.pk AND dim1.attr = 3",
        );
        let mut has_nlj = false;
        p.root.walk(&mut |n| {
            if matches!(n.op, Op::NestedLoopJoin) {
                has_nlj = true;
            }
        });
        if has_nlj {
            // The inner fact index runs once per outer row; its usage
            // must reflect the total work, not a single execution.
            let usage = p
                .index_usages
                .iter()
                .find(|u| !u.index.clustered && u.index.table == fact.id)
                .expect("join index used");
            assert!(usage.rows > 1.0, "scaled rows expected, got {}", usage.rows);
            assert!(usage.access_cost() > 0.0);
        }
    }

    #[test]
    fn cross_product_falls_back_gracefully() {
        // No join predicate at all: the optimizer must still produce a
        // (cartesian) plan with finite cost.
        let db = test_db();
        let base = Configuration::base(&db);
        let p = plan_sql(&db, &base, "SELECT fact.v, dim2.attr FROM fact, dim2");
        assert!(p.cost.is_finite());
        assert!(p.rows > 1e7, "cartesian cardinality expected: {}", p.rows);
    }

    #[test]
    fn top_limits_projected_rows() {
        let db = test_db();
        let base = Configuration::base(&db);
        let p = plan_sql(&db, &base, "SELECT TOP 7 fact.v FROM fact ORDER BY fact.v");
        assert!(p.rows <= 7.0);
    }
}
