//! The cost model: abstract time units over I/O and CPU components.
//!
//! Constants are calibrated so the classic crossovers happen at
//! realistic points (documented per constant): an index seek beats a
//! scan below ~10–20 % selectivity without a lookup and ~0.1–1 % with
//! one; covering indexes beat lookups for all but tiny row counts;
//! sort-avoidance matters for large inputs.

use pdt_physical::size::SizeModel;
use pdt_physical::{Index, PhysicalSchema};

/// Cost model constants. One unit ~ one sequential page read.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Sequential page I/O.
    pub seq_page: f64,
    /// Random page I/O (seeks, rid lookups) — 4x sequential, the
    /// standard ratio that puts the seek/scan crossover near 25 % of
    /// pages touched.
    pub rand_page: f64,
    /// CPU cost of pushing one row through an operator.
    pub cpu_tuple: f64,
    /// CPU cost of evaluating one predicate on one row.
    pub cpu_pred: f64,
    /// CPU cost per comparison in sorting (x `n log2 n`).
    pub cpu_sort: f64,
    /// CPU cost of hashing one row (build or probe).
    pub cpu_hash: f64,
    /// The storage model used to translate structures into pages.
    pub size: SizeModel,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_page: 1.0,
            rand_page: 4.0,
            cpu_tuple: 0.01,
            cpu_pred: 0.002,
            cpu_sort: 0.012,
            cpu_hash: 0.015,
            size: SizeModel::default(),
        }
    }
}

/// An (io, cpu) cost pair.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    pub io: f64,
    pub cpu: f64,
}

impl Cost {
    pub const ZERO: Cost = Cost { io: 0.0, cpu: 0.0 };

    pub fn new(io: f64, cpu: f64) -> Cost {
        Cost { io, cpu }
    }

    pub fn total(&self) -> f64 {
        self.io + self.cpu
    }

    pub fn add(&self, other: Cost) -> Cost {
        Cost {
            io: self.io + other.io,
            cpu: self.cpu + other.cpu,
        }
    }
}

impl CostModel {
    /// Pages of an index under a schema.
    pub fn index_pages(&self, schema: &PhysicalSchema<'_>, index: &Index) -> f64 {
        self.size.index_pages(schema, index)
    }

    /// Number of B-tree levels above the leaves (for seek descent
    /// costing).
    pub fn btree_levels(&self, schema: &PhysicalSchema<'_>, index: &Index) -> f64 {
        let pages = self.index_pages(schema, index);
        pages.max(1.0).log(100.0).ceil().max(1.0)
    }

    /// Cost of scanning an entire index (or heap modeled as an index).
    pub fn full_scan(&self, pages: f64, rows: f64) -> Cost {
        Cost::new(pages * self.seq_page, rows * self.cpu_tuple)
    }

    /// Cost of seeking an index: descend the tree, then read the
    /// qualifying fraction of leaf pages sequentially.
    pub fn seek(&self, levels: f64, leaf_pages: f64, selectivity: f64, rows_out: f64) -> Cost {
        let touched = (leaf_pages * selectivity).ceil().max(1.0);
        Cost::new(
            levels * self.rand_page + touched * self.seq_page,
            rows_out * self.cpu_tuple,
        )
    }

    /// Cost of rid lookups for `rows` rows against a table of
    /// `table_pages` pages: random I/O per row, capped by the point
    /// where re-reading the table sequentially (with re-reads) would be
    /// cheaper.
    pub fn rid_lookup(&self, rows: f64, table_pages: f64) -> Cost {
        let random = rows * self.rand_page;
        let capped = random.min(table_pages.max(1.0) * self.seq_page * 3.0 + rows * 0.001);
        Cost::new(capped, rows * self.cpu_tuple)
    }

    /// Cost of intersecting two sorted rid streams.
    pub fn rid_intersect(&self, rows_a: f64, rows_b: f64) -> Cost {
        Cost::new(0.0, (rows_a + rows_b) * self.cpu_tuple)
    }

    /// Cost of applying `n_preds` predicates to `rows` rows.
    pub fn filter(&self, rows: f64, n_preds: usize) -> Cost {
        Cost::new(0.0, rows * self.cpu_pred * n_preds.max(1) as f64)
    }

    /// Cost of sorting `rows` rows of `row_bytes` each; spills add
    /// sequential I/O for one write+read pass.
    pub fn sort(&self, rows: f64, row_bytes: f64) -> Cost {
        const SORT_MEMORY: f64 = 64.0 * 1024.0 * 1024.0;
        let rows = rows.max(1.0);
        let cpu = rows * rows.log2().max(1.0) * self.cpu_sort;
        let bytes = rows * row_bytes;
        let io = if bytes > SORT_MEMORY {
            2.0 * (bytes / self.size.page_size) * self.seq_page
        } else {
            0.0
        };
        Cost::new(io, cpu)
    }

    /// Cost of a hash join given build/probe row counts and the build
    /// side's row width (spills when the build side exceeds memory).
    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, build_bytes_per_row: f64) -> Cost {
        const HASH_MEMORY: f64 = 64.0 * 1024.0 * 1024.0;
        let cpu = (build_rows + probe_rows) * self.cpu_hash;
        let build_bytes = build_rows * build_bytes_per_row;
        let io = if build_bytes > HASH_MEMORY {
            2.0 * (build_bytes / self.size.page_size) * self.seq_page
        } else {
            0.0
        };
        Cost::new(io, cpu)
    }

    /// Cost of hash aggregation.
    pub fn hash_aggregate(&self, rows: f64, groups: f64) -> Cost {
        Cost::new(0.0, rows * self.cpu_hash + groups * self.cpu_tuple)
    }

    /// Cost of stream aggregation over sorted input.
    pub fn stream_aggregate(&self, rows: f64) -> Cost {
        Cost::new(0.0, rows * self.cpu_tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_beats_scan_at_low_selectivity() {
        let m = CostModel::default();
        let pages = 10_000.0;
        let rows = 1_000_000.0;
        let scan = m.full_scan(pages, rows).total();
        let seek = m.seek(3.0, pages, 0.001, rows * 0.001).total();
        assert!(seek < scan / 10.0, "seek {seek} vs scan {scan}");
        // And near-full selectivity the seek approaches the scan.
        let seek_all = m.seek(3.0, pages, 1.0, rows).total();
        assert!(seek_all >= scan * 0.95);
    }

    #[test]
    fn rid_lookup_is_capped() {
        let m = CostModel::default();
        let few = m.rid_lookup(10.0, 10_000.0).total();
        assert!(few < 50.0);
        let many = m.rid_lookup(1_000_000.0, 10_000.0);
        // Capped near 3x table scan, not 4M units.
        assert!(many.io <= 31_000.0, "io={}", many.io);
    }

    #[test]
    fn covering_crossover() {
        // Classic: reading 0.1% of rows via a non-covering index
        // (random lookups) beats a full scan on a large table; at 50%
        // the scan wins by a wide margin.
        let m = CostModel::default();
        let table_pages = 100_000.0;
        let rows = 10_000_000.0;
        let scan = m.full_scan(table_pages, rows).total();
        let seek_01pct = m
            .seek(3.0, 2_000.0, 0.001, rows * 0.001)
            .add(m.rid_lookup(rows * 0.001, table_pages))
            .total();
        assert!(seek_01pct < scan, "{seek_01pct} vs {scan}");
        let seek_50pct = m
            .seek(3.0, 2_000.0, 0.5, rows * 0.5)
            .add(m.rid_lookup(rows * 0.5, table_pages))
            .total();
        assert!(seek_50pct > scan, "{seek_50pct} vs {scan}");
    }

    #[test]
    fn sort_spills_add_io() {
        let m = CostModel::default();
        let small = m.sort(10_000.0, 100.0);
        assert_eq!(small.io, 0.0);
        let big = m.sort(10_000_000.0, 100.0);
        assert!(big.io > 0.0);
    }

    #[test]
    fn cost_addition() {
        let a = Cost::new(1.0, 2.0);
        let b = Cost::new(3.0, 4.0);
        assert_eq!(a.add(b).total(), 10.0);
    }
}
