//! Cardinality estimation: histogram selectivities, independence
//! between predicates, `1/max(ndv)` equi-join selectivity, and
//! Cardenas-style distinct counting for group-by outputs.

use pdt_catalog::{ColumnId, TableId};
use pdt_expr::ClassifiedPredicates;
use pdt_physical::PhysicalSchema;
use std::collections::BTreeSet;

/// Distinct count of a column, as seen by the join/grouping estimator.
pub fn column_ndv(schema: &PhysicalSchema<'_>, col: ColumnId) -> f64 {
    schema
        .column_stats(col)
        .map(|s| s.ndv.max(1.0))
        .unwrap_or(100.0)
        .min(schema.rows(col.table).max(1.0))
}

/// Selectivity of one equi-join predicate: `1 / max(ndv_l, ndv_r)`.
pub fn join_selectivity(schema: &PhysicalSchema<'_>, left: ColumnId, right: ColumnId) -> f64 {
    1.0 / column_ndv(schema, left).max(column_ndv(schema, right))
}

/// Estimated output rows of joining `subset` with all applicable local
/// and join predicates, under independence.
pub fn subset_rows(
    schema: &PhysicalSchema<'_>,
    subset: &BTreeSet<TableId>,
    preds: &ClassifiedPredicates,
) -> f64 {
    let mut rows = 1.0f64;
    for &t in subset {
        rows *= schema.rows(t).max(1.0);
        rows *= preds.local_selectivity(schema.db, t);
    }
    for j in &preds.joins {
        if subset.contains(&j.left.table) && subset.contains(&j.right.table) {
            rows *= join_selectivity(schema, j.left, j.right);
        }
    }
    // Cross-table "other" predicates fully inside the subset.
    for o in &preds.others {
        let ts = o.tables();
        if ts.len() > 1 && ts.iter().all(|t| subset.contains(t)) {
            rows *= o.selectivity;
        }
    }
    rows.max(1.0)
}

/// Estimated number of groups when grouping `input_rows` rows by
/// `group_cols`.
pub fn group_count(
    schema: &PhysicalSchema<'_>,
    input_rows: f64,
    group_cols: &BTreeSet<ColumnId>,
) -> f64 {
    if group_cols.is_empty() {
        return 1.0;
    }
    let mut domain = 1.0f64;
    for c in group_cols {
        domain *= column_ndv(schema, *c);
        if domain > 1e15 {
            break;
        }
    }
    // Expected distinct combinations drawn `input_rows` times from a
    // domain of `domain` values.
    let input = input_rows.max(1.0);
    (domain * (1.0 - (-input / domain).exp())).clamp(1.0, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::{ColumnStats, ColumnType, Database};
    use pdt_expr::{classify_conjuncts, scalar::CmpOp, PredExpr, ScalarExpr};
    use pdt_physical::Configuration;

    fn test_db() -> Database {
        let mut b = Database::builder("t");
        let mk = |name: &str, ndv: f64| pdt_catalog::Column {
            name: name.into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(ndv, 0.0, ndv, 4.0),
        };
        b.add_table(
            "fact",
            1_000_000.0,
            vec![mk("fk", 1000.0), mk("v", 100.0)],
            vec![],
        );
        b.add_table(
            "dim",
            1000.0,
            vec![mk("pk", 1000.0), mk("w", 10.0)],
            vec![0],
        );
        b.build()
    }

    fn cid(db: &Database, t: &str, c: &str) -> ColumnId {
        let table = db.table_by_name(t).unwrap();
        table.column_id(table.column_ordinal(c).unwrap())
    }

    #[test]
    fn fk_join_preserves_fact_cardinality() {
        let db = test_db();
        let config = Configuration::new();
        let schema = PhysicalSchema::new(&db, &config);
        let fk = cid(&db, "fact", "fk");
        let pk = cid(&db, "dim", "pk");
        let preds = classify_conjuncts(
            &db,
            vec![PredExpr::Cmp {
                op: CmpOp::Eq,
                left: ScalarExpr::column(fk),
                right: ScalarExpr::column(pk),
            }],
        );
        let rows = subset_rows(&schema, &[fk.table, pk.table].into(), &preds);
        // 1M x 1000 / max(1000,1000) = 1M.
        assert!(
            (rows - 1_000_000.0).abs() / 1_000_000.0 < 0.01,
            "rows={rows}"
        );
    }

    #[test]
    fn cross_product_without_join() {
        let db = test_db();
        let config = Configuration::new();
        let schema = PhysicalSchema::new(&db, &config);
        let preds = ClassifiedPredicates::default();
        let f = db.table_by_name("fact").unwrap().id;
        let d = db.table_by_name("dim").unwrap().id;
        let rows = subset_rows(&schema, &[f, d].into(), &preds);
        assert_eq!(rows, 1_000_000.0 * 1000.0);
    }

    #[test]
    fn group_count_caps_at_input() {
        let db = test_db();
        let config = Configuration::new();
        let schema = PhysicalSchema::new(&db, &config);
        let v = cid(&db, "fact", "v");
        let g = group_count(&schema, 50.0, &[v].into());
        assert!(g <= 50.0);
        let g2 = group_count(&schema, 1e6, &[v].into());
        assert!((g2 - 100.0).abs() < 1.0, "g2={g2}");
    }

    #[test]
    fn group_count_of_nothing_is_one() {
        let db = test_db();
        let config = Configuration::new();
        let schema = PhysicalSchema::new(&db, &config);
        assert_eq!(group_count(&schema, 1000.0, &BTreeSet::new()), 1.0);
    }
}
