//! # pdt-opt — a cost-based query optimizer with instrumentable
//! access-path and view-matching entry points
//!
//! A from-scratch System-R-style optimizer built specifically so that
//! the relaxation-based tuner can instrument it the way the paper
//! instruments SQL Server (Section 2):
//!
//! * there is **one** component that generates physical strategies for
//!   single-table logical sub-plans ([`access`]), and **one** view
//!   matching component ([`Optimizer`] drives [`pdt_physical::view`]);
//! * every time either is invoked, the optimizer first calls a
//!   [`RequestSink`] with the full [`IndexRequest`] `(S, N, O, A)` or
//!   [`ViewRequest`] (an SPJG sub-query). The sink may add hypothetical
//!   structures to the working configuration *before* the optimizer
//!   continues — the suspend/analyze/resume loop of the paper's Fig. 2;
//! * plans carry per-index [`IndexUsage`] annotations: everything the
//!   paper's §3.3.2 extracts from "explain" output (cost, rows, seek vs
//!   scan, seek selectivity, provided order, provided columns).
//!
//! The optimizer performs: predicate classification, histogram-based
//! cardinality estimation, single-table access-path selection (seeks,
//! covering scans, rid lookups, two-way rid intersection, sort
//! avoidance), dynamic-programming join enumeration (hash joins and
//! index nested-loops), view matching with compensating filters and
//! re-grouping, and sort/aggregate planning.

pub mod access;
pub mod block;
pub mod card;
pub mod cost;
pub mod optimizer;
pub mod plan;
pub mod request;

pub use block::QueryBlock;
pub use cost::CostModel;
pub use optimizer::{invocation_count, plan_footprint, reprice_plan, Optimizer, OptimizerOptions};
pub use plan::{IndexUsage, Op, PhysPlan, PlanNode, UsageKind};
pub use request::{CountingSink, IndexRequest, NullSink, RequestSink, TracingSink, ViewRequest};
