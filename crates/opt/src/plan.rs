//! Physical plans with per-index usage annotations.
//!
//! The tuner's §3.3.2 machinery consumes exactly what a commercial
//! "explain" interface exposes: for each index used over a base table
//! or view, its estimated cost, rows, usage kind (seek fraction vs full
//! scan), the enforced order (if the plan relies on it), the sought
//! columns, and the additional columns required upwards in the tree.
//! [`IndexUsage`] carries all of that.

use pdt_catalog::ColumnId;
use pdt_physical::Index;
use std::collections::BTreeSet;
use std::fmt;

/// How an index was accessed.
#[derive(Debug, Clone, PartialEq)]
pub enum UsageKind {
    /// Full leaf-level scan.
    Scan,
    /// Seek on the first `seek_cols` key columns with combined
    /// selectivity `selectivity`.
    Seek { seek_cols: usize, selectivity: f64 },
}

/// One use of an index in a plan (the "explain" record of §3.3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexUsage {
    pub index: Index,
    pub kind: UsageKind,
    /// Cost attributable to the index access itself (descent + leaf
    /// I/O + per-row CPU), excluding compensation operators.
    pub access_io: f64,
    pub access_cpu: f64,
    /// Estimated rows returned by the access.
    pub rows: f64,
    /// Order of the returned rows that the plan *relies on* (None when
    /// the plan does not exploit the index order).
    pub provided_order: Option<Vec<(ColumnId, bool)>>,
    /// Columns the plan obtains from this index (seek + filter +
    /// output columns it provides).
    pub provided_columns: BTreeSet<ColumnId>,
    /// Whether a rid lookup ran on top of this access in the plan.
    pub followed_by_lookup: bool,
    /// Per-column `(column, selectivity, is_equality)` of the seek
    /// predicates (empty for scans) — what the tuner needs to
    /// re-derive `s_IR` for an arbitrary replacement index (§3.3.2).
    /// The equality flag matters because a range predicate consumes
    /// its key column but stops the seek prefix.
    pub seek_col_sels: Vec<(ColumnId, f64, bool)>,
    /// Total predicate count of the request this access answered
    /// (sargable + non-sargable) — everything a replacement full scan
    /// must re-filter.
    pub total_preds: usize,
    /// Columns referenced by predicates *not* consumed by this
    /// access's seek. A replacement index must also cover these (on
    /// top of the provided columns) to filter without a rid lookup.
    pub resid_pred_cols: BTreeSet<ColumnId>,
    /// Filter CPU the plan charged downstream of this access
    /// (residual predicates at their actual cardinalities). A §3.3.2
    /// patch may credit this much when it re-charges filters itself.
    pub resid_filter_cpu: f64,
    /// How many times the plan runs this access (1 normally; the outer
    /// cardinality for a nested-loops inner side). `access_io`,
    /// `access_cpu`, `rows`, and `resid_filter_cpu` are aggregated over
    /// all executions; a scan-shaped replacement must pay per run.
    pub executions: f64,
}

impl IndexUsage {
    /// Total attributable access cost.
    pub fn access_cost(&self) -> f64 {
        self.access_io + self.access_cpu
    }

    /// The seek selectivity (1.0 for scans).
    pub fn selectivity(&self) -> f64 {
        match self.kind {
            UsageKind::Scan => 1.0,
            UsageKind::Seek { selectivity, .. } => selectivity,
        }
    }
}

/// Physical operator kinds (for explain output and tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Scan of a heap (table without a clustered index).
    HeapScan { table: pdt_catalog::TableId },
    /// Full scan of an index's leaf level.
    IndexScan { index: Index },
    /// Seek on an index.
    IndexSeek { index: Index, selectivity: f64 },
    /// Fetch full rows by rid.
    RidLookup,
    /// Intersect two rid streams.
    RidIntersect,
    /// Apply residual predicates.
    Filter { predicates: usize, selectivity: f64 },
    /// Explicit sort.
    Sort { columns: Vec<(ColumnId, bool)> },
    /// Hash join (build = first child).
    HashJoin,
    /// Nested-loops join; the inner side re-executes per outer row.
    NestedLoopJoin,
    /// Hash aggregation.
    HashAggregate { groups: usize },
    /// Aggregation over sorted input.
    StreamAggregate { groups: usize },
    /// Final projection.
    Project,
}

/// A node of the physical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    pub op: Op,
    /// Cumulative cost of the subtree.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    pub fn leaf(op: Op, cost: f64, rows: f64) -> PlanNode {
        PlanNode {
            op,
            cost,
            rows,
            children: Vec::new(),
        }
    }

    pub fn unary(op: Op, cost: f64, rows: f64, child: PlanNode) -> PlanNode {
        PlanNode {
            op,
            cost,
            rows,
            children: vec![child],
        }
    }

    pub fn binary(op: Op, cost: f64, rows: f64, left: PlanNode, right: PlanNode) -> PlanNode {
        PlanNode {
            op,
            cost,
            rows,
            children: vec![left, right],
        }
    }

    /// Depth-first iteration over all operators.
    pub fn walk(&self, f: &mut impl FnMut(&PlanNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// A complete optimized plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPlan {
    pub root: PlanNode,
    /// Total estimated cost (time units).
    pub cost: f64,
    /// Estimated result rows.
    pub rows: f64,
    /// Every index used, with its §3.3.2 annotations.
    pub index_usages: Vec<IndexUsage>,
}

impl PhysPlan {
    /// True if the plan uses the given index anywhere.
    pub fn uses_index(&self, index: &Index) -> bool {
        self.index_usages.iter().any(|u| &u.index == index)
    }

    /// True if the plan accesses the given table id (base or view).
    pub fn uses_table(&self, table: pdt_catalog::TableId) -> bool {
        self.index_usages.iter().any(|u| u.index.table == table) || {
            let mut found = false;
            self.root.walk(&mut |n| {
                if let Op::HeapScan { table: t } = n.op {
                    if t == table {
                        found = true;
                    }
                }
            });
            found
        }
    }

    /// Pretty multi-line explain rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        fn rec(n: &PlanNode, depth: usize, out: &mut String) {
            use fmt::Write;
            let _ = writeln!(
                out,
                "{:indent$}{:?} (cost={:.2} rows={:.0})",
                "",
                n.op,
                n.cost,
                n.rows,
                indent = depth * 2
            );
            for c in &n.children {
                rec(c, depth + 1, out);
            }
        }
        rec(&self.root, 0, &mut out);
        out
    }
}

impl fmt::Display for PhysPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::TableId;

    fn dummy_index() -> Index {
        Index::new(TableId(0), [ColumnId::new(TableId(0), 0)], [])
    }

    #[test]
    fn walk_visits_all_nodes() {
        let leaf = PlanNode::leaf(
            Op::IndexScan {
                index: dummy_index(),
            },
            10.0,
            100.0,
        );
        let root = PlanNode::unary(Op::Project, 11.0, 100.0, leaf);
        let mut count = 0;
        root.walk(&mut |_| count += 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn uses_index_and_table() {
        let idx = dummy_index();
        let plan = PhysPlan {
            root: PlanNode::leaf(Op::IndexScan { index: idx.clone() }, 1.0, 1.0),
            cost: 1.0,
            rows: 1.0,
            index_usages: vec![IndexUsage {
                index: idx.clone(),
                kind: UsageKind::Scan,
                access_io: 1.0,
                access_cpu: 0.0,
                rows: 1.0,
                provided_order: None,
                provided_columns: BTreeSet::new(),
                followed_by_lookup: false,
                seek_col_sels: Vec::new(),
                total_preds: 0,
                resid_pred_cols: BTreeSet::new(),
                resid_filter_cpu: 0.0,
                executions: 1.0,
            }],
        };
        assert!(plan.uses_index(&idx));
        assert!(plan.uses_table(TableId(0)));
        assert!(!plan.uses_table(TableId(5)));
    }

    #[test]
    fn heap_scan_detection() {
        let plan = PhysPlan {
            root: PlanNode::leaf(Op::HeapScan { table: TableId(3) }, 1.0, 1.0),
            cost: 1.0,
            rows: 1.0,
            index_usages: vec![],
        };
        assert!(plan.uses_table(TableId(3)));
    }

    #[test]
    fn usage_selectivity() {
        let u = IndexUsage {
            index: dummy_index(),
            kind: UsageKind::Seek {
                seek_cols: 1,
                selectivity: 0.25,
            },
            access_io: 2.0,
            access_cpu: 1.0,
            rows: 10.0,
            provided_order: None,
            provided_columns: BTreeSet::new(),
            followed_by_lookup: true,
            seek_col_sels: vec![(ColumnId::new(TableId(0), 0), 0.25, true)],
            total_preds: 1,
            resid_pred_cols: BTreeSet::new(),
            resid_filter_cpu: 0.0,
            executions: 1.0,
        };
        assert_eq!(u.selectivity(), 0.25);
        assert_eq!(u.access_cost(), 3.0);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = PhysPlan {
            root: PlanNode::unary(
                Op::Project,
                2.0,
                1.0,
                PlanNode::leaf(Op::HeapScan { table: TableId(0) }, 1.0, 10.0),
            ),
            cost: 2.0,
            rows: 1.0,
            index_usages: vec![],
        };
        let text = plan.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("HeapScan"));
    }
}
