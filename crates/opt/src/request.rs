//! Access-path and view requests: the two instrumentation points.
//!
//! "Each time the optimizer issues an index or view request, we suspend
//! optimization and analyze the request ... we then simulate these
//! hypothetical structures in the system catalogs and resume
//! optimization" (paper §2, Fig. 2). A [`RequestSink`] receives each
//! request *before* the optimizer enumerates physical alternatives and
//! may add hypothetical structures to the working configuration.

use pdt_catalog::{ColumnId, Database, TableId};
use pdt_expr::SargablePred;
use pdt_physical::{Configuration, SpjgExpr};
use std::collections::BTreeSet;

/// An index request `(S, N, O, A)`: "S are columns in sargable
/// predicates, N contains subsets of columns in non-sargable
/// predicates, O are columns in order requests, and A are other
/// referenced columns" (§2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRequest {
    /// The table (or materialized view) being accessed.
    pub table: TableId,
    /// `S`: sargable predicates, with merged sargs and selectivities
    /// derivable against the catalog.
    pub sargable: Vec<SargablePred>,
    /// `N`: column sets of local non-sargable predicates, with their
    /// heuristic selectivities.
    pub non_sargable: Vec<(BTreeSet<ColumnId>, f64)>,
    /// `O`: requested output order.
    pub order: Vec<(ColumnId, bool)>,
    /// `A`: additional columns referenced upwards in the tree.
    pub additional: BTreeSet<ColumnId>,
    /// Cardinality of the underlying table/view.
    pub input_rows: f64,
}

impl IndexRequest {
    /// All columns mentioned anywhere in the request.
    pub fn all_columns(&self) -> BTreeSet<ColumnId> {
        let mut out: BTreeSet<ColumnId> = self.sargable.iter().map(|s| s.column).collect();
        for (cols, _) in &self.non_sargable {
            out.extend(cols.iter().copied());
        }
        out.extend(self.order.iter().map(|(c, _)| *c));
        out.extend(self.additional.iter().copied());
        out
    }

    /// Combined selectivity of all sargable predicates.
    pub fn sargable_selectivity(&self, db: &Database) -> f64 {
        self.sargable
            .iter()
            .map(|s| s.selectivity(db))
            .product::<f64>()
            .clamp(0.0, 1.0)
    }
}

/// A view request: an SPJG sub-query the optimizer would like a
/// materialized view for.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewRequest {
    pub spjg: SpjgExpr,
    /// True when the request covers the whole query block (as opposed
    /// to a join sub-expression explored during enumeration).
    pub top_level: bool,
}

/// Instrumentation hook invoked at the two optimizer entry points.
pub trait RequestSink {
    /// Called before single-relation access-path selection. The sink
    /// may add hypothetical indexes to `config`.
    fn on_index_request(
        &mut self,
        _req: &IndexRequest,
        _db: &Database,
        _config: &mut Configuration,
    ) {
    }

    /// Called before view matching for an SPJG sub-query. The sink may
    /// add hypothetical materialized views (plus their clustered
    /// indexes) to `config`.
    fn on_view_request(&mut self, _req: &ViewRequest, _db: &Database, _config: &mut Configuration) {
    }
}

/// A sink that does nothing (plain optimization).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl RequestSink for NullSink {}

/// A sink that counts requests (reproduces the paper's Table 1).
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    pub index_requests: usize,
    pub view_requests: usize,
}

impl RequestSink for CountingSink {
    fn on_index_request(
        &mut self,
        _req: &IndexRequest,
        _db: &Database,
        _config: &mut Configuration,
    ) {
        self.index_requests += 1;
    }

    fn on_view_request(&mut self, _req: &ViewRequest, _db: &Database, _config: &mut Configuration) {
        self.view_requests += 1;
    }
}

/// A sink that emits one trace event per request, then delegates to an
/// inner sink. Optimization under a sink is single-threaded (requests
/// arrive in plan-enumeration order), so the event stream is
/// deterministic for a given query and configuration.
pub struct TracingSink<'a, S: RequestSink> {
    inner: S,
    tracer: &'a pdt_trace::Tracer,
}

impl<'a, S: RequestSink> TracingSink<'a, S> {
    pub fn new(inner: S, tracer: &'a pdt_trace::Tracer) -> Self {
        TracingSink { inner, tracer }
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RequestSink> RequestSink for TracingSink<'_, S> {
    fn on_index_request(&mut self, req: &IndexRequest, db: &Database, config: &mut Configuration) {
        self.tracer.emit(
            "request.index",
            vec![
                ("table", (req.table.0 as u64).into()),
                ("sargable", req.sargable.len().into()),
                ("non_sargable", req.non_sargable.len().into()),
                ("order", req.order.len().into()),
                ("additional", req.additional.len().into()),
            ],
        );
        self.tracer.incr("request.index", 1);
        self.inner.on_index_request(req, db, config);
    }

    fn on_view_request(&mut self, req: &ViewRequest, db: &Database, config: &mut Configuration) {
        self.tracer.emit(
            "request.view",
            vec![
                ("tables", req.spjg.tables.len().into()),
                ("top_level", req.top_level.into()),
                ("grouped", req.spjg.is_grouped().into()),
            ],
        );
        self.tracer.incr("request.view", 1);
        self.inner.on_view_request(req, db, config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_expr::{Interval, Sarg};

    #[test]
    fn all_columns_unions_every_component() {
        let t = TableId(0);
        let c = |i: u16| ColumnId::new(t, i);
        let req = IndexRequest {
            table: t,
            sargable: vec![SargablePred {
                column: c(0),
                sarg: Sarg::Range(Interval::point(1.0)),
            }],
            non_sargable: vec![([c(1), c(2)].into(), 0.33)],
            order: vec![(c(3), false)],
            additional: [c(4)].into(),
            input_rows: 100.0,
        };
        assert_eq!(req.all_columns().len(), 5);
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        let mut b = pdt_catalog::Database::builder("x");
        b.add_table(
            "t",
            1.0,
            vec![pdt_catalog::Column {
                name: "a".into(),
                ty: pdt_catalog::ColumnType::Int,
                stats: pdt_catalog::ColumnStats::uniform(1.0, 0.0, 1.0, 4.0),
            }],
            vec![],
        );
        let db = b.build();
        let mut config = Configuration::new();
        let req = IndexRequest {
            table: TableId(0),
            sargable: vec![],
            non_sargable: vec![],
            order: vec![],
            additional: BTreeSet::new(),
            input_rows: 1.0,
        };
        sink.on_index_request(&req, &db, &mut config);
        sink.on_index_request(&req, &db, &mut config);
        sink.on_view_request(
            &ViewRequest {
                spjg: SpjgExpr::default(),
                top_level: true,
            },
            &db,
            &mut config,
        );
        assert_eq!(sink.index_requests, 2);
        assert_eq!(sink.view_requests, 1);
    }
}
