//! Single-relation access-path selection — the optimizer's *one* entry
//! point for physical index strategies (paper §2, Fig. 2).
//!
//! Given an [`IndexRequest`] and the available indexes, this module
//! enumerates the paper's template plans — "(i) one or more index seeks
//! (or index scans) at the leaf nodes, (ii) combine[d] ... by binary
//! intersections, (iii) an optional rid lookup ..., (iv) an optional
//! filter for non-sargable predicates, and (v) an optional sort" — and
//! returns the cheapest.

use crate::cost::{Cost, CostModel};
use crate::plan::{IndexUsage, Op, PlanNode, UsageKind};
use crate::request::IndexRequest;
use pdt_catalog::ColumnId;
use pdt_expr::classify::sarg_selectivity_with;
use pdt_expr::{Sarg, SargablePred};
use pdt_physical::{Index, PhysicalSchema};
use std::collections::BTreeSet;

/// The chosen access path for one relation.
#[derive(Debug, Clone)]
pub struct AccessPath {
    pub node: PlanNode,
    pub cost: Cost,
    pub rows: f64,
    pub usages: Vec<IndexUsage>,
    /// True if the output satisfies the requested order without a sort.
    pub provides_order: bool,
}

/// Selectivity of one sargable predicate against the physical schema
/// (resolves view-column statistics, unlike the catalog-only path).
pub fn sarg_selectivity(schema: &PhysicalSchema<'_>, pred: &SargablePred) -> f64 {
    if let Sarg::Param { selectivity } = pred.sarg {
        return selectivity;
    }
    match schema.column_stats(pred.column) {
        Some(stats) => sarg_selectivity_with(stats, &pred.sarg),
        None => pdt_expr::classify::DEFAULT_OTHER_SELECTIVITY,
    }
}

/// Pick the cheapest physical strategy for `req`.
pub fn best_access_path(
    model: &CostModel,
    schema: &PhysicalSchema<'_>,
    req: &IndexRequest,
) -> AccessPath {
    let table = req.table;
    let table_rows = schema.rows(table).max(1.0);
    let table_pages = (table_rows * schema.row_width(table) / model.size.page_size)
        .ceil()
        .max(1.0);

    // Per-sarg selectivities.
    let sargs: Vec<(usize, f64)> = req
        .sargable
        .iter()
        .enumerate()
        .map(|(i, s)| (i, sarg_selectivity(schema, s)))
        .collect();
    let sarg_sel: f64 = sargs
        .iter()
        .map(|(_, s)| s)
        .product::<f64>()
        .clamp(0.0, 1.0);
    let others_sel: f64 = req
        .non_sargable
        .iter()
        .map(|(_, s)| *s)
        .product::<f64>()
        .clamp(0.0, 1.0);
    let out_rows = (table_rows * sarg_sel * others_sel).max(0.0);

    // Columns needed in the output stream (everything referenced at or
    // above the filter level).
    let mut needed: BTreeSet<ColumnId> = req.additional.clone();
    needed.extend(req.order.iter().map(|(c, _)| *c));
    for (cols, _) in &req.non_sargable {
        needed.extend(cols.iter().copied());
    }

    let order_cols: Vec<ColumnId> = req.order.iter().map(|(c, _)| *c).collect();
    let n_preds = req.sargable.len() + req.non_sargable.len();
    // Every column any predicate references — what a plan that consumes
    // no predicates must be able to read to filter.
    let pred_cols: BTreeSet<ColumnId> = req
        .sargable
        .iter()
        .map(|s| s.column)
        .chain(
            req.non_sargable
                .iter()
                .flat_map(|(cols, _)| cols.iter().copied()),
        )
        .collect();

    let indexes: Vec<&Index> = schema.config.indexes_on(table).collect();
    let clustered = indexes.iter().copied().find(|i| i.clustered);

    let mut best: Option<AccessPath> = None;
    let mut consider = |cand: AccessPath| {
        if best
            .as_ref()
            .is_none_or(|b| cand.cost.total() < b.cost.total())
        {
            best = Some(cand);
        }
    };

    // ---------------- scans (base relation or covering index) -------
    {
        // Scan of the clustered index / heap.
        let (scan_node, scan_cost, usage) = match clustered {
            Some(ci) => {
                let pages = model.index_pages(schema, ci);
                let cost = model.full_scan(pages, table_rows);
                let provides = order_satisfied(&ci.key, 0, &order_cols);
                let usage = IndexUsage {
                    index: ci.clone(),
                    kind: UsageKind::Scan,
                    access_io: cost.io,
                    access_cpu: cost.cpu,
                    rows: table_rows,
                    provided_order: if provides && !order_cols.is_empty() {
                        Some(req.order.clone())
                    } else {
                        None
                    },
                    provided_columns: {
                        let mut c = needed.clone();
                        c.extend(req.sargable.iter().map(|s| s.column));
                        c
                    },
                    followed_by_lookup: false,
                    seek_col_sels: Vec::new(),
                    total_preds: n_preds,
                    resid_pred_cols: pred_cols.clone(),
                    resid_filter_cpu: if n_preds > 0 {
                        model.filter(table_rows, n_preds).total()
                    } else {
                        0.0
                    },
                    executions: 1.0,
                };
                (
                    PlanNode::leaf(
                        Op::IndexScan { index: ci.clone() },
                        cost.total(),
                        table_rows,
                    ),
                    cost,
                    Some(usage),
                )
            }
            None => {
                let cost = model.full_scan(table_pages, table_rows);
                (
                    PlanNode::leaf(Op::HeapScan { table }, cost.total(), table_rows),
                    cost,
                    None,
                )
            }
        };
        let provides = usage
            .as_ref()
            .map(|u| u.provided_order.is_some())
            .unwrap_or(false);
        consider(finish(
            model,
            schema,
            req,
            scan_node,
            scan_cost,
            table_rows,
            out_rows,
            n_preds,
            usage.into_iter().collect(),
            provides,
            &order_cols,
            &needed,
        ));
    }

    for index in &indexes {
        if index.clustered {
            continue;
        }
        // Covering secondary scan: must provide every referenced column
        // (sargable ones included — they are filtered here).
        let mut all_ref = needed.clone();
        all_ref.extend(req.sargable.iter().map(|s| s.column));
        if index.covers(&all_ref) {
            let pages = model.index_pages(schema, index);
            let cost = model.full_scan(pages, table_rows);
            let provides = order_satisfied(&index.key, 0, &order_cols);
            let usage = IndexUsage {
                index: (*index).clone(),
                kind: UsageKind::Scan,
                access_io: cost.io,
                access_cpu: cost.cpu,
                rows: table_rows,
                provided_order: if provides && !order_cols.is_empty() {
                    Some(req.order.clone())
                } else {
                    None
                },
                provided_columns: all_ref.clone(),
                followed_by_lookup: false,
                seek_col_sels: Vec::new(),
                total_preds: n_preds,
                resid_pred_cols: pred_cols.clone(),
                resid_filter_cpu: if n_preds > 0 {
                    model.filter(table_rows, n_preds).total()
                } else {
                    0.0
                },
                executions: 1.0,
            };
            let node = PlanNode::leaf(
                Op::IndexScan {
                    index: (*index).clone(),
                },
                cost.total(),
                table_rows,
            );
            consider(finish(
                model,
                schema,
                req,
                node,
                cost,
                table_rows,
                out_rows,
                n_preds,
                vec![usage],
                provides,
                &order_cols,
                &needed,
            ));
        }
    }

    // ---------------- single-index seeks ----------------------------
    let mut seekables: Vec<(usize, f64, &Index)> = Vec::new(); // (prefix len, sel, index)
    for index in &indexes {
        let (prefix_len, seek_sel, eq_prefix) = seek_prefix(index, req, &sargs);
        if prefix_len == 0 {
            continue;
        }
        seekables.push((prefix_len, seek_sel, index));
        let rows_after_seek = (table_rows * seek_sel).max(0.0);
        let levels = model.btree_levels(schema, index);
        let leaf_pages = model.index_pages(schema, index);
        let seek_cost = model.seek(levels, leaf_pages, seek_sel, rows_after_seek);

        // Residual predicates: sargs not consumed by the seek plus the
        // non-sargable ones.
        let consumed: BTreeSet<ColumnId> = index.key[..prefix_len].iter().copied().collect();
        let mut resid_sel_on_index = 1.0;
        let mut resid_sel_after_lookup = 1.0;
        let mut n_on_index = 0usize;
        let mut n_after = 0usize;
        for (si, sel) in &sargs {
            let sp = &req.sargable[*si];
            if consumed.contains(&sp.column) {
                continue;
            }
            if index.covers([&sp.column]) {
                resid_sel_on_index *= sel;
                n_on_index += 1;
            } else {
                resid_sel_after_lookup *= sel;
                n_after += 1;
            }
        }
        for (cols, sel) in &req.non_sargable {
            if index.covers(cols) {
                resid_sel_on_index *= sel;
                n_on_index += 1;
            } else {
                resid_sel_after_lookup *= sel;
                n_after += 1;
            }
        }

        let covers_output = index.covers(&needed);
        let provides = order_satisfied(&index.key, 0, &order_cols)
            || order_satisfied(&index.key, eq_prefix, &order_cols);

        // Residual-filter CPU this plan will charge downstream of the
        // seek: on-index filters run at the seek's output, post-lookup
        // filters at the on-index-filtered cardinality.
        let resid_filter_cpu = {
            let mut cpu = 0.0;
            if n_on_index > 0 {
                cpu += model.filter(rows_after_seek, n_on_index).total();
            }
            if n_after > 0 {
                cpu += model
                    .filter(rows_after_seek * resid_sel_on_index, n_after)
                    .total();
            }
            cpu
        };

        let mut usage = IndexUsage {
            index: (*index).clone(),
            kind: UsageKind::Seek {
                seek_cols: prefix_len,
                selectivity: seek_sel,
            },
            access_io: seek_cost.io,
            access_cpu: seek_cost.cpu,
            rows: rows_after_seek,
            provided_order: if provides && !order_cols.is_empty() {
                Some(req.order.clone())
            } else {
                None
            },
            provided_columns: {
                let all = index.all_columns();
                let mut c: BTreeSet<ColumnId> = needed
                    .iter()
                    .copied()
                    .filter(|x| index.clustered || all.contains(x))
                    .collect();
                c.extend(consumed.iter().copied());
                c
            },
            followed_by_lookup: false,
            seek_col_sels: index.key[..prefix_len]
                .iter()
                .map(|kc| {
                    let (sel, eq) = sargs
                        .iter()
                        .find(|(si, _)| req.sargable[*si].column == *kc)
                        .map(|(si, s)| (*s, req.sargable[*si].sarg.is_equality()))
                        .unwrap_or((1.0, false));
                    (*kc, sel, eq)
                })
                .collect(),
            total_preds: n_preds,
            resid_pred_cols: pred_cols
                .iter()
                .copied()
                .filter(|c| !consumed.contains(c))
                .collect(),
            resid_filter_cpu,
            executions: 1.0,
        };

        let seek_node = PlanNode::leaf(
            Op::IndexSeek {
                index: (*index).clone(),
                selectivity: seek_sel,
            },
            seek_cost.total(),
            rows_after_seek,
        );

        if covers_output && n_after == 0 {
            // Fully covered: seek + filter.
            let mut cost = seek_cost;
            let mut node = seek_node;
            let rows_mid = rows_after_seek * resid_sel_on_index;
            if n_on_index > 0 {
                let f = model.filter(rows_after_seek, n_on_index);
                cost = cost.add(f);
                node = PlanNode::unary(
                    Op::Filter {
                        predicates: n_on_index,
                        selectivity: resid_sel_on_index,
                    },
                    cost.total(),
                    rows_mid,
                    node,
                );
            }
            consider(finish(
                model,
                schema,
                req,
                node,
                cost,
                rows_mid,
                out_rows,
                0,
                vec![usage.clone()],
                provides,
                &order_cols,
                &needed,
            ));
        } else {
            // Seek -> on-index filters -> rid lookup -> remaining
            // filters. (Rid lookups lose index order in this engine:
            // rows come back in rid order.)
            usage.followed_by_lookup = true;
            usage.provided_order = None;
            let mut cost = seek_cost;
            let mut node = seek_node;
            let mut rows_mid = rows_after_seek;
            if n_on_index > 0 {
                let f = model.filter(rows_mid, n_on_index);
                cost = cost.add(f);
                rows_mid *= resid_sel_on_index;
                node = PlanNode::unary(
                    Op::Filter {
                        predicates: n_on_index,
                        selectivity: resid_sel_on_index,
                    },
                    cost.total(),
                    rows_mid,
                    node,
                );
            }
            let lk = model.rid_lookup(rows_mid, table_pages);
            cost = cost.add(lk);
            node = PlanNode::unary(Op::RidLookup, cost.total(), rows_mid, node);
            if n_after > 0 {
                let f = model.filter(rows_mid, n_after);
                cost = cost.add(f);
                rows_mid *= resid_sel_after_lookup;
                node = PlanNode::unary(
                    Op::Filter {
                        predicates: n_after,
                        selectivity: resid_sel_after_lookup,
                    },
                    cost.total(),
                    rows_mid,
                    node,
                );
            }
            consider(finish(
                model,
                schema,
                req,
                node,
                cost,
                rows_mid,
                out_rows,
                0,
                vec![usage],
                false,
                &order_cols,
                &needed,
            ));
        }
    }

    // ---------------- two-way rid intersection ----------------------
    seekables.sort_by(|a, b| a.1.total_cmp(&b.1));
    for i in 0..seekables.len().min(4) {
        for j in (i + 1)..seekables.len().min(4) {
            let (p1, s1, i1) = seekables[i];
            let (p2, s2, i2) = seekables[j];
            if i1.key[0] == i2.key[0] {
                continue; // same leading column: intersection is useless
            }
            let r1 = table_rows * s1;
            let r2 = table_rows * s2;
            let combined = (table_rows * s1 * s2).max(0.0);
            let c1 = model.seek(
                model.btree_levels(schema, i1),
                model.index_pages(schema, i1),
                s1,
                r1,
            );
            let c2 = model.seek(
                model.btree_levels(schema, i2),
                model.index_pages(schema, i2),
                s2,
                r2,
            );
            let ci = model.rid_intersect(r1, r2);
            let lk = model.rid_lookup(combined, table_pages);
            let mut cost = c1.add(c2).add(ci).add(lk);
            let n_resid = n_preds.saturating_sub(2);
            let mk_usage = |idx: &Index, sel: f64, prefix: usize, c: Cost, r: f64| IndexUsage {
                index: idx.clone(),
                kind: UsageKind::Seek {
                    seek_cols: prefix,
                    selectivity: sel,
                },
                access_io: c.io,
                access_cpu: c.cpu,
                rows: r,
                provided_order: None,
                provided_columns: idx.key[..prefix].iter().copied().collect(),
                followed_by_lookup: true,
                seek_col_sels: idx.key[..prefix]
                    .iter()
                    .map(|kc| {
                        let (s, eq) = sargs
                            .iter()
                            .find(|(si, _)| req.sargable[*si].column == *kc)
                            .map(|(si, v)| (*v, req.sargable[*si].sarg.is_equality()))
                            .unwrap_or((1.0, false));
                        (*kc, s, eq)
                    })
                    .collect(),
                total_preds: n_preds,
                resid_pred_cols: {
                    let consumed: BTreeSet<ColumnId> = idx.key[..prefix].iter().copied().collect();
                    pred_cols
                        .iter()
                        .copied()
                        .filter(|c| !consumed.contains(c))
                        .collect()
                },
                // The residual filters of an intersection plan are
                // shared between both seeks; crediting them to either
                // usage could double-count when both indexes are
                // removed, so neither claims them.
                resid_filter_cpu: 0.0,
                executions: 1.0,
            };
            let usages = vec![mk_usage(i1, s1, p1, c1, r1), mk_usage(i2, s2, p2, c2, r2)];
            let seek1 = PlanNode::leaf(
                Op::IndexSeek {
                    index: i1.clone(),
                    selectivity: s1,
                },
                c1.total(),
                r1,
            );
            let seek2 = PlanNode::leaf(
                Op::IndexSeek {
                    index: i2.clone(),
                    selectivity: s2,
                },
                c2.total(),
                r2,
            );
            let inter = PlanNode::binary(
                Op::RidIntersect,
                c1.add(c2).add(ci).total(),
                combined,
                seek1,
                seek2,
            );
            let mut node = PlanNode::unary(Op::RidLookup, cost.total(), combined, inter);
            let mut rows_mid = combined;
            if n_resid > 0 {
                let f = model.filter(rows_mid, n_resid);
                cost = cost.add(f);
                rows_mid = out_rows.min(rows_mid);
                node = PlanNode::unary(
                    Op::Filter {
                        predicates: n_resid,
                        selectivity: 1.0,
                    },
                    cost.total(),
                    rows_mid,
                    node,
                );
            }
            consider(finish(
                model,
                schema,
                req,
                node,
                cost,
                rows_mid.max(out_rows),
                out_rows,
                0,
                usages,
                false,
                &order_cols,
                &needed,
            ));
        }
    }

    best.expect("at least the base scan is always available")
}

/// Longest seekable key prefix: every column must carry a sarg, and
/// only point-equality sargs allow the seek to continue to the next
/// key column. Returns `(prefix_len, selectivity, equality_prefix_len)`.
fn seek_prefix(index: &Index, req: &IndexRequest, sels: &[(usize, f64)]) -> (usize, f64, usize) {
    let mut len = 0usize;
    let mut eq_len = 0usize;
    let mut sel = 1.0f64;
    for key_col in &index.key {
        match req.sargable.iter().position(|s| s.column == *key_col) {
            Some(si) => {
                sel *= sels
                    .iter()
                    .find(|(i, _)| *i == si)
                    .map(|(_, s)| *s)
                    .unwrap_or(1.0);
                len += 1;
                if req.sargable[si].sarg.is_equality() {
                    eq_len = len;
                } else {
                    break; // a range consumes the column and stops the seek
                }
            }
            None => break,
        }
    }
    (len, sel, eq_len)
}

/// True if `order_cols` is a prefix of `key[skip..]`.
fn order_satisfied(key: &[ColumnId], skip: usize, order_cols: &[ColumnId]) -> bool {
    if order_cols.is_empty() {
        return true;
    }
    if skip >= key.len() {
        return false;
    }
    let tail = &key[skip..];
    tail.len() >= order_cols.len() && tail[..order_cols.len()] == *order_cols
}

/// Attach residual filters (when `extra_preds > 0`) and a sort (when
/// order is requested but not provided), producing the final candidate.
#[allow(clippy::too_many_arguments)]
fn finish(
    model: &CostModel,
    schema: &PhysicalSchema<'_>,
    req: &IndexRequest,
    mut node: PlanNode,
    mut cost: Cost,
    rows_in: f64,
    out_rows: f64,
    extra_preds: usize,
    usages: Vec<IndexUsage>,
    provides_order: bool,
    order_cols: &[ColumnId],
    needed: &BTreeSet<ColumnId>,
) -> AccessPath {
    let mut rows = rows_in;
    if extra_preds > 0 {
        let f = model.filter(rows, extra_preds);
        cost = cost.add(f);
        rows = out_rows;
        node = PlanNode::unary(
            Op::Filter {
                predicates: extra_preds,
                selectivity: 1.0,
            },
            cost.total(),
            rows,
            node,
        );
    }
    // The access path's final estimate is the logical output
    // cardinality regardless of which plan shape produced it.
    rows = out_rows;
    let mut provided = provides_order;
    if !order_cols.is_empty() && !provides_order {
        let width: f64 = needed
            .iter()
            .map(|c| schema.column_width(*c))
            .sum::<f64>()
            .max(8.0);
        let s = model.sort(rows, width);
        cost = cost.add(s);
        node = PlanNode::unary(
            Op::Sort {
                columns: req.order.clone(),
            },
            cost.total(),
            rows,
            node,
        );
        provided = true;
    }
    AccessPath {
        node,
        cost,
        rows,
        usages,
        provides_order: provided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdt_catalog::{ColumnStats, ColumnType, Database};
    use pdt_expr::Interval;
    use pdt_physical::Configuration;

    fn test_db() -> Database {
        let mut b = Database::builder("t");
        let mk = |name: &str, ndv: f64| pdt_catalog::Column {
            name: name.into(),
            ty: ColumnType::Int,
            stats: ColumnStats::uniform(ndv, 0.0, ndv, 4.0),
        };
        b.add_table(
            "r",
            1_000_000.0,
            vec![
                mk("id", 1_000_000.0),
                mk("a", 10_000.0),
                mk("b", 100.0),
                mk("c", 1000.0),
                mk("pad", 50.0),
            ],
            vec![0],
        );
        b.build()
    }

    fn rid(db: &Database, name: &str) -> ColumnId {
        let t = db.table_by_name("r").unwrap();
        t.column_id(t.column_ordinal(name).unwrap())
    }

    fn req(
        db: &Database,
        sargs: Vec<(ColumnId, Interval)>,
        order: Vec<ColumnId>,
        additional: Vec<ColumnId>,
    ) -> IndexRequest {
        IndexRequest {
            table: db.table_by_name("r").unwrap().id,
            sargable: sargs
                .into_iter()
                .map(|(c, i)| SargablePred {
                    column: c,
                    sarg: Sarg::Range(i),
                })
                .collect(),
            non_sargable: vec![],
            order: order.into_iter().map(|c| (c, false)).collect(),
            additional: additional.into_iter().collect(),
            input_rows: 1_000_000.0,
        }
    }

    fn schema_with<'a>(db: &'a Database, config: &'a Configuration) -> PhysicalSchema<'a> {
        PhysicalSchema::new(db, config)
    }

    #[test]
    fn no_indexes_means_heap_or_clustered_scan() {
        let db = test_db();
        let config = Configuration::base(&db);
        let schema = schema_with(&db, &config);
        let model = CostModel::default();
        let r = req(
            &db,
            vec![(rid(&db, "a"), Interval::point(5.0))],
            vec![],
            vec![rid(&db, "b")],
        );
        let path = best_access_path(&model, &schema, &r);
        let mut scans = 0;
        let mut seeks = 0;
        path.node.walk(&mut |n| match n.op {
            Op::IndexScan { .. } | Op::HeapScan { .. } => scans += 1,
            Op::IndexSeek { .. } => seeks += 1,
            _ => {}
        });
        assert_eq!((scans, seeks), (1, 0), "{:?}", path.node);
        assert_eq!(path.usages.len(), 1);
    }

    #[test]
    fn selective_seek_beats_scan() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let a = rid(&db, "a");
        let b = rid(&db, "b");
        config.add_index(Index::new(a.table, [a], [b]));
        let schema = schema_with(&db, &config);
        let model = CostModel::default();
        let r = req(&db, vec![(a, Interval::point(5.0))], vec![], vec![b]);
        let path = best_access_path(&model, &schema, &r);
        let seek_used = path
            .usages
            .iter()
            .any(|u| matches!(u.kind, UsageKind::Seek { .. }));
        assert!(seek_used, "expected a seek:\n{:?}", path.node);
        assert!(
            !path.usages[0].followed_by_lookup,
            "covering index needs no lookup"
        );
    }

    #[test]
    fn non_covering_seek_adds_lookup_and_wide_range_prefers_scan() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let a = rid(&db, "a");
        let c = rid(&db, "c");
        config.add_index(Index::new(a.table, [a], []));
        let schema = schema_with(&db, &config);
        let model = CostModel::default();

        // Tiny range: seek + lookup wins.
        let tight = req(&db, vec![(a, Interval::point(5.0))], vec![], vec![c]);
        let p1 = best_access_path(&model, &schema, &tight);
        assert!(p1.usages.iter().any(|u| u.followed_by_lookup));

        // 90% range: clustered scan wins.
        let loose = req(
            &db,
            vec![(a, Interval::at_least(1000.0, true))],
            vec![],
            vec![c],
        );
        let p2 = best_access_path(&model, &schema, &loose);
        assert!(
            p2.usages.iter().all(|u| matches!(u.kind, UsageKind::Scan)),
            "{:?}",
            p2.node
        );
    }

    #[test]
    fn multi_column_seek_uses_equality_prefix() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let a = rid(&db, "a");
        let b = rid(&db, "b");
        let idx = Index::new(a.table, [b, a], []);
        config.add_index(idx.clone());
        let schema = schema_with(&db, &config);
        let model = CostModel::default();
        let r = IndexRequest {
            table: a.table,
            sargable: vec![
                SargablePred {
                    column: b,
                    sarg: Sarg::Range(Interval::point(1.0)),
                },
                SargablePred {
                    column: a,
                    sarg: Sarg::Range(Interval::at_most(100.0, true)),
                },
            ],
            non_sargable: vec![],
            order: vec![],
            additional: BTreeSet::new(),
            input_rows: 1_000_000.0,
        };
        let path = best_access_path(&model, &schema, &r);
        let usage = path.usages.iter().find(|u| u.index == idx).unwrap();
        match usage.kind {
            UsageKind::Seek { seek_cols, .. } => assert_eq!(seek_cols, 2),
            _ => panic!("expected seek"),
        }
    }

    #[test]
    fn order_providing_index_avoids_sort() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let a = rid(&db, "a");
        let b = rid(&db, "b");
        config.add_index(Index::new(a.table, [a], [b]));
        let schema = schema_with(&db, &config);
        let model = CostModel::default();
        let r = req(&db, vec![], vec![a], vec![b]);
        let path = best_access_path(&model, &schema, &r);
        let mut has_sort = false;
        path.node.walk(&mut |n| {
            if matches!(n.op, Op::Sort { .. }) {
                has_sort = true;
            }
        });
        assert!(!has_sort, "index provides order:\n{}", path.node.cost);
        assert!(path.usages.iter().any(|u| u.provided_order.is_some()));
    }

    #[test]
    fn sort_added_when_no_order_available() {
        let db = test_db();
        let config = Configuration::base(&db);
        let schema = schema_with(&db, &config);
        let model = CostModel::default();
        let a = rid(&db, "a");
        let r = req(&db, vec![], vec![a], vec![]);
        let path = best_access_path(&model, &schema, &r);
        let mut has_sort = false;
        path.node.walk(&mut |n| {
            if matches!(n.op, Op::Sort { .. }) {
                has_sort = true;
            }
        });
        assert!(has_sort);
        assert!(path.provides_order);
    }

    #[test]
    fn intersection_considered_for_two_selective_predicates() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let a = rid(&db, "a");
        let c = rid(&db, "c");
        let pad = rid(&db, "pad");
        config.add_index(Index::new(a.table, [a], []));
        config.add_index(Index::new(a.table, [c], []));
        let schema = schema_with(&db, &config);
        let model = CostModel::default();
        let r = req(
            &db,
            vec![(a, Interval::point(5.0)), (c, Interval::point(7.0))],
            vec![],
            vec![pad],
        );
        let path = best_access_path(&model, &schema, &r);
        // Either intersection or single seek+lookup; both must beat the
        // scan by far.
        let scan_cost = model
            .full_scan(
                model.index_pages(&schema, config.clustered_index_on(a.table).unwrap()),
                1_000_000.0,
            )
            .total();
        assert!(path.cost.total() < scan_cost / 20.0);
    }

    #[test]
    fn covering_scan_beats_clustered_scan_for_narrow_projection() {
        let db = test_db();
        let mut config = Configuration::base(&db);
        let a = rid(&db, "a");
        let b = rid(&db, "b");
        // Covering index on exactly the needed columns (no sargs at
        // all: pure projection scan).
        config.add_index(Index::new(a.table, [a], [b]));
        let schema = schema_with(&db, &config);
        let model = CostModel::default();
        let r = req(&db, vec![], vec![], vec![a, b]);
        let path = best_access_path(&model, &schema, &r);
        match &path.node.op {
            Op::IndexScan { index } => assert!(!index.clustered),
            other => panic!("expected covering index scan, got {other:?}"),
        }
    }
}
