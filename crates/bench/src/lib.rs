//! # pdt-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section 4),
//! plus a parallel-scaling run. Every binary prints the rows/series
//! the paper reports and writes machine-readable JSON to `results/`.
//!
//! | binary       | reproduces |
//! |--------------|------------|
//! | `exp_table1` | Table 1 — index/view requests for the TPC-H workload |
//! | `exp_table2` | Table 2 — databases and workloads of the corpus |
//! | `exp_table3` | Table 3 — tuning time, CTT vs PTT, top-10 workloads |
//! | `exp_fig3`   | Fig. 3 — bottom-up best-configuration-over-time |
//! | `exp_fig4`   | Fig. 4 — relaxation size/cost trajectory |
//! | `exp_fig6`   | Fig. 6 — candidate transformations per iteration |
//! | `exp_fig8`   | Fig. 8 — ΔImprovement, no constraints |
//! | `exp_fig9`   | Fig. 9 — ΔImprovement, UPDATE workloads |
//! | `exp_fig10`  | Fig. 10 — quality vs storage constraint |
//! | `exp_ablation` | design-choice ablations (DESIGN.md §5) |
//! | `exp_parallel` | thread/cache scaling → `BENCH_parallel.json` |
//! | `exp_incremental` | incremental candidate engine on/off → `BENCH_incremental.json` |
//! | `exp_derived` | derived what-if costing on/off → `BENCH_derived.json` |
//! | `exp_hotpath` | flat hot-path on/off + phase attribution → `BENCH_hotpath.json` |
//! | `exp_budget` | what-if call-budget frontier → `BENCH_budget.json` |

pub mod json;

use json::ToJson;
use pdt_catalog::Database;
use pdt_sql::Statement;
use pdt_tuner::Workload;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Directory where experiment outputs land.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PDT_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("create results dir");
    path
}

/// Persist a JSON result next to the printed output.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().pretty()).expect("write results");
    eprintln!("[saved {}]", path.display());
}

/// Timed repeats for every wall-clock row an experiment reports; the
/// reported value is the median.
pub const TIMING_REPEATS: usize = 3;

/// Median-of-[`TIMING_REPEATS`] wall-clock milliseconds of `f`. The
/// closure's result is discarded — run the workload once beforehand if
/// its output (report, trace) is needed for anything besides timing.
pub fn median_wall_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut walls = Vec::with_capacity(TIMING_REPEATS);
    for _ in 0..TIMING_REPEATS {
        let start = std::time::Instant::now();
        let _ = f();
        walls.push(start.elapsed().as_secs_f64() * 1e3);
    }
    walls.sort_by(f64::total_cmp);
    walls[walls.len() / 2]
}

/// Render a fixed-width ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:width$} ", h, width = widths[i]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// A simple ASCII histogram of ΔImprovement values (Fig. 8/9 style:
/// one bar per workload, sorted descending).
pub fn render_delta_bars(deltas: &[f64]) -> String {
    let mut sorted = deltas.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut out = String::new();
    let scale = 0.5; // one char per 2 percentage points
    for d in sorted {
        let n = (d.abs() / scale).round().min(60.0) as usize;
        if d >= 0.0 {
            let _ = writeln!(
                out,
                "{:>7.2} | {}",
                d,
                "#".repeat(n.max(usize::from(d > 0.05)))
            );
        } else {
            let _ = writeln!(out, "{:>7.2} | {}", d, "-".repeat(n));
        }
    }
    out
}

/// Summary statistics for a ΔImprovement panel.
#[derive(Debug)]
pub struct DeltaSummary {
    pub workloads: usize,
    pub ties_within_1pct: usize,
    pub ptt_wins_over_1pct: usize,
    pub ptt_losses_over_1pct: usize,
    pub max_delta: f64,
    pub min_delta: f64,
    pub mean_delta: f64,
}

json_struct!(DeltaSummary {
    workloads,
    ties_within_1pct,
    ptt_wins_over_1pct,
    ptt_losses_over_1pct,
    max_delta,
    min_delta,
    mean_delta,
});

impl DeltaSummary {
    pub fn from(deltas: &[f64]) -> DeltaSummary {
        let n = deltas.len().max(1);
        DeltaSummary {
            workloads: deltas.len(),
            ties_within_1pct: deltas.iter().filter(|d| d.abs() <= 1.0).count(),
            ptt_wins_over_1pct: deltas.iter().filter(|d| **d > 1.0).count(),
            ptt_losses_over_1pct: deltas.iter().filter(|d| **d < -1.0).count(),
            max_delta: deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            min_delta: deltas.iter().copied().fold(f64::INFINITY, f64::min),
            mean_delta: deltas.iter().sum::<f64>() / n as f64,
        }
    }
}

/// Bind statements, skipping the (rare) generated statements that fall
/// outside the supported subset, and panicking only if nothing binds.
pub fn bind_workload(db: &Database, statements: &[Statement]) -> Workload {
    Workload::bind(db, statements).expect("corpus workloads always bind")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["a", "long header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("| a "));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn delta_summary_counts() {
        let s = DeltaSummary::from(&[0.0, 0.5, 3.0, -2.0, 12.0]);
        assert_eq!(s.ties_within_1pct, 2);
        assert_eq!(s.ptt_wins_over_1pct, 2);
        assert_eq!(s.ptt_losses_over_1pct, 1);
        assert_eq!(s.max_delta, 12.0);
    }

    #[test]
    fn bars_render_negative_and_positive() {
        let bars = render_delta_bars(&[5.0, -3.0]);
        assert!(bars.contains('#'));
        assert!(bars.contains('-'));
    }
}
