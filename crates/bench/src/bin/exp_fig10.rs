//! Figure 10 — "Quality of recommendations with space constraints":
//! improvement as the storage budget sweeps from the minimal to the
//! optimal configuration size (0%..100%), for PTT and CTT.
//!
//! Expected shapes (paper §4.2): PTT's curve is monotone
//! non-decreasing in space; CTT can dip when slightly more space is
//! available ("due to multiple heuristics and greedy approximation").

use pdt_baseline::{BaselineAdvisor, BaselineOptions};
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, render_table, write_json};
use pdt_catalog::Database;
use pdt_sql::Statement;
use pdt_tuner::{tune, TunerOptions};
use pdt_workloads::star::{star_database, star_workload, StarParams};
use pdt_workloads::tpch;

struct SweepPoint {
    pct_of_optimal: f64,
    budget_mb: f64,
    impr_ptt: f64,
    impr_ctt: f64,
}
json_struct!(SweepPoint {
    pct_of_optimal,
    budget_mb,
    impr_ptt,
    impr_ctt
});

struct Sweep {
    name: String,
    points: Vec<SweepPoint>,
}
json_struct!(Sweep { name, points });

fn main() {
    let mut sweeps = Vec::new();

    let tpch_db = tpch::tpch_database(0.1);
    let spec = tpch::tpch_workload();
    sweeps.push(sweep("TPC-H (indexes)", &tpch_db, &spec.statements));

    let p = StarParams::ds1();
    let ds1 = star_database(&p);
    let spec = star_workload(&p, 7, 12);
    sweeps.push(sweep("DS1 (indexes)", &ds1, &spec.statements));

    println!("Figure 10: quality of recommendations with space constraints\n");
    for s in &sweeps {
        println!("== {} ==", s.name);
        let rows: Vec<Vec<String>> = s
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}%", p.pct_of_optimal),
                    format!("{:.0}", p.budget_mb),
                    format!("{:.1}%", p.impr_ptt),
                    format!("{:.1}%", p.impr_ctt),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["space", "budget (MB)", "PTT", "CTT"], &rows)
        );
        let monotone = s
            .points
            .windows(2)
            .all(|w| w[1].impr_ptt >= w[0].impr_ptt - 0.5);
        let ctt_dips = s
            .points
            .windows(2)
            .any(|w| w[1].impr_ctt < w[0].impr_ctt - 0.5);
        println!("PTT monotone non-decreasing: {monotone}; CTT dips with more space: {ctt_dips}\n");
    }
    write_json("fig10", &sweeps);
}

fn sweep(name: &str, db: &Database, statements: &[Statement]) -> Sweep {
    let w = bind_workload(db, statements);
    // Index-only, as in the paper's figure.
    let free = tune(
        db,
        &w,
        &TunerOptions {
            with_views: false,
            ..Default::default()
        },
    );
    let mut points = Vec::new();
    for pct in [5.0, 10.0, 20.0, 35.0, 50.0, 70.0, 90.0, 100.0] {
        let budget = free.initial_size + (free.optimal_size - free.initial_size) * pct / 100.0;
        let ptt = tune(
            db,
            &w,
            &TunerOptions {
                with_views: false,
                space_budget: Some(budget),
                max_iterations: 500,
                ..Default::default()
            },
        );
        let ctt = BaselineAdvisor::new(
            db,
            BaselineOptions {
                with_views: false,
                space_budget: Some(budget),
                ..Default::default()
            },
        )
        .tune(&w);
        points.push(SweepPoint {
            pct_of_optimal: pct,
            budget_mb: budget / 1e6,
            impr_ptt: ptt.best_improvement_pct(),
            impr_ctt: ctt.improvement_pct(),
        });
    }
    Sweep {
        name: name.to_string(),
        points,
    }
}
