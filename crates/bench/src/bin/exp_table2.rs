//! Table 2 — "Databases and workloads used in the experiments."

use pdt_bench::json_struct;
use pdt_bench::{render_table, write_json};
use pdt_workloads::bench::{bench_database, BenchParams};
use pdt_workloads::star::{star_database, StarParams};
use pdt_workloads::tpch;

struct Row {
    database: String,
    tables: usize,
    data_gb: f64,
    select_workloads: usize,
    update_workloads: usize,
    queries_per_workload: String,
}
json_struct!(Row {
    database,
    tables,
    data_gb,
    select_workloads,
    update_workloads,
    queries_per_workload
});

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    let tpch = tpch::tpch_database(1.0);
    rows.push(Row {
        database: "TPC-H (SF 1)".into(),
        tables: tpch.tables().len(),
        data_gb: tpch.total_heap_bytes() / 1e9,
        select_workloads: 41, // 22-query canonical + 40 seeded variants
        update_workloads: 20,
        queries_per_workload: "8-22".into(),
    });

    let ds1 = star_database(&StarParams::ds1());
    rows.push(Row {
        database: "DS1 (star, 6 dims)".into(),
        tables: ds1.tables().len(),
        data_gb: ds1.total_heap_bytes() / 1e9,
        select_workloads: 40,
        update_workloads: 20,
        queries_per_workload: "12".into(),
    });

    let ds2 = star_database(&StarParams::ds2());
    rows.push(Row {
        database: "DS2 (star, 9 dims)".into(),
        tables: ds2.tables().len(),
        data_gb: ds2.total_heap_bytes() / 1e9,
        select_workloads: 20,
        update_workloads: 10,
        queries_per_workload: "12".into(),
    });

    let bench = bench_database(&BenchParams::default());
    rows.push(Row {
        database: "BENCH (random)".into(),
        tables: bench.tables().len(),
        data_gb: bench.total_heap_bytes() / 1e9,
        select_workloads: 40,
        update_workloads: 20,
        queries_per_workload: "15".into(),
    });

    println!("Table 2: databases and workloads used in the experiments\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.database.clone(),
                r.tables.to_string(),
                format!("{:.2}", r.data_gb),
                r.select_workloads.to_string(),
                r.update_workloads.to_string(),
                r.queries_per_workload.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "database",
                "tables",
                "data (GB)",
                "SELECT workloads",
                "UPDATE workloads",
                "queries/workload",
            ],
            &table_rows,
        )
    );
    write_json("table2", &rows);
}
