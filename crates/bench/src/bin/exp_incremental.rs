//! Incremental candidate engine on/off comparison: wall-clock,
//! fresh-vs-reused candidate scoring, and bound-memo hit rate for a
//! 40-iteration TPC-H tuning session, crossed with the worker-thread
//! count. The headline number is the **scoring amplification**
//! `(generated + reused) / generated` — how many candidate scores the
//! search consumed per candidate it actually priced from scratch.
//!
//! The run also enforces the engine's core contract: the JSONL trace
//! and the recommended configuration are byte-identical whether the
//! incremental engine is on or off, at every thread count.
//!
//! Writes `BENCH_incremental.json` into the current directory (run
//! from the repo root) in addition to the shared results directory.

use pdt_bench::json::ToJson;
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, render_table, write_json};
use pdt_trace::Tracer;
use pdt_tuner::{tune, tune_traced, TunerOptions, TuningReport};
use pdt_workloads::tpch;
use std::time::Instant;

struct Row {
    incremental: bool,
    threads: usize,
    wall_clock_ms: f64,
    candidates_generated: u64,
    candidates_reused: u64,
    amplification: f64,
    bound_memo_hits: u64,
    bound_memo_misses: u64,
    memo_hit_rate_pct: f64,
    optimizer_calls: usize,
    improvement_pct: f64,
}
json_struct!(Row {
    incremental,
    threads,
    wall_clock_ms,
    candidates_generated,
    candidates_reused,
    amplification,
    bound_memo_hits,
    bound_memo_misses,
    memo_hit_rate_pct,
    optimizer_calls,
    improvement_pct
});

struct Summary {
    available_parallelism: usize,
    amplification: f64,
    incremental_speedup_1_thread: f64,
    traces_identical: bool,
    rows: Vec<Row>,
}
json_struct!(Summary {
    available_parallelism,
    amplification,
    incremental_speedup_1_thread,
    traces_identical,
    rows
});

fn main() {
    let db = tpch::tpch_database(0.05);
    let spec = tpch::tpch_workload();
    let w = bind_workload(&db, &spec.statements);

    // Constrained run: a budget barely above the base configuration
    // forces a long relaxation chain, the regime where delta-driven
    // enumeration and score inheritance pay off.
    let free = tune(
        &db,
        &w,
        &TunerOptions {
            with_views: false,
            ..Default::default()
        },
    );
    let budget = free.initial_size + (free.optimal_size - free.initial_size) * 0.1;

    let run = |incremental: bool, threads: usize| -> (Row, TuningReport, String) {
        let tracer = Tracer::new();
        let start = Instant::now();
        let r = tune_traced(
            &db,
            &w,
            &TunerOptions {
                with_views: false,
                space_budget: Some(budget),
                max_iterations: 40,
                threads,
                incremental,
                ..Default::default()
            },
            Some(&tracer),
        );
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let scored = r.candidates_generated + r.candidates_reused;
        let memo_probes = r.bound_memo_hits + r.bound_memo_misses;
        let row = Row {
            incremental,
            threads,
            wall_clock_ms: wall,
            candidates_generated: r.candidates_generated,
            candidates_reused: r.candidates_reused,
            amplification: scored as f64 / r.candidates_generated.max(1) as f64,
            bound_memo_hits: r.bound_memo_hits,
            bound_memo_misses: r.bound_memo_misses,
            memo_hit_rate_pct: if memo_probes == 0 {
                0.0
            } else {
                100.0 * r.bound_memo_hits as f64 / memo_probes as f64
            },
            optimizer_calls: r.optimizer_calls,
            improvement_pct: r.best_improvement_pct(),
        };
        let jsonl = tracer.to_jsonl();
        (row, r, jsonl)
    };

    let mut rows = Vec::new();
    let mut baseline: Option<(String, String)> = None;
    let mut traces_identical = true;
    for (incremental, threads) in [(true, 1), (true, 4), (false, 1), (false, 4)] {
        let (row, report, trace) = run(incremental, threads);
        rows.push(row);
        let fp = format!("{:?}", report.best.as_ref().map(|b| (b.cost, &b.config)));
        match &baseline {
            None => baseline = Some((fp, trace)),
            Some((best_fp, base_trace)) => {
                assert_eq!(
                    best_fp, &fp,
                    "recommendation diverged (incremental={incremental}, threads={threads})"
                );
                traces_identical &= *base_trace == trace;
                assert_eq!(
                    base_trace, &trace,
                    "trace diverged (incremental={incremental}, threads={threads})"
                );
            }
        }
    }

    let wall = |incremental: bool, threads: usize| {
        rows.iter()
            .find(|r| r.incremental == incremental && r.threads == threads)
            .map(|r| r.wall_clock_ms)
            .unwrap_or(f64::NAN)
    };
    let amplification = rows[0].amplification;
    assert!(
        amplification >= 5.0,
        "scoring amplification {amplification:.1}x is below the 5x acceptance floor"
    );
    let summary = Summary {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        amplification,
        incremental_speedup_1_thread: wall(false, 1) / wall(true, 1),
        traces_identical,
        rows,
    };

    let table: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|r| {
            vec![
                if r.incremental { "on" } else { "off" }.to_string(),
                r.threads.to_string(),
                format!("{:.0}", r.wall_clock_ms),
                r.candidates_generated.to_string(),
                r.candidates_reused.to_string(),
                format!("{:.1}", r.amplification),
                format!("{:.1}", r.memo_hit_rate_pct),
                format!("{:+.1}", r.improvement_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["incr", "threads", "wall ms", "gen", "reused", "amplif", "memo %", "improv %"],
            &table
        )
    );
    println!(
        "amplification: {:.1}x   1-thread speedup (incremental vs from-scratch): {:.2}x   traces identical: {}",
        summary.amplification, summary.incremental_speedup_1_thread, summary.traces_identical
    );

    write_json("BENCH_incremental", &summary);
    std::fs::write("BENCH_incremental.json", summary.to_json().pretty())
        .expect("write BENCH_incremental.json");
    eprintln!("[saved BENCH_incremental.json]");
}
