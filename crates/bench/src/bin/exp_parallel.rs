//! Parallel-scaling run for the relaxation engine: wall-clock,
//! optimizer calls, and what-if cost-cache hit rate as a function of
//! the worker-thread count, plus a cache on/off comparison.
//!
//! Writes `BENCH_parallel.json` into the current directory (run from
//! the repo root) in addition to the shared results directory. The
//! JSON records `available_parallelism` so single-core environments —
//! where thread scaling cannot show a speedup — are self-documenting.

use pdt_bench::json::ToJson;
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, median_wall_ms, render_table, write_json};
use pdt_tuner::{tune, TunerOptions, TuningReport};
use pdt_workloads::tpch;

struct Row {
    threads: usize,
    cost_cache: bool,
    /// More workers than cores: the wall clock measures scheduling
    /// overhead, not scaling, so the row must not be read as a speedup.
    degraded: bool,
    wall_clock_ms: f64,
    optimizer_calls: usize,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate_pct: f64,
    improvement_pct: f64,
}
json_struct!(Row {
    threads,
    cost_cache,
    degraded,
    wall_clock_ms,
    optimizer_calls,
    cache_hits,
    cache_misses,
    cache_hit_rate_pct,
    improvement_pct
});

struct Summary {
    nproc: usize,
    speedup_vs_1_thread: f64,
    /// True when every multi-thread row is degraded — the speedup
    /// figure above is then a 1-core artifact, not a scaling result.
    speedup_degraded: bool,
    cache_speedup_1_thread: f64,
    rows: Vec<Row>,
}
json_struct!(Summary {
    nproc,
    speedup_vs_1_thread,
    speedup_degraded,
    cache_speedup_1_thread,
    rows
});

fn main() {
    let db = tpch::tpch_database(0.05);
    let spec = tpch::tpch_workload();
    let w = bind_workload(&db, &spec.statements);

    // Constrained run: budget at 20% of the optimal configuration's
    // extra space, the regime where relaxation does real work.
    let free = tune(
        &db,
        &w,
        &TunerOptions {
            with_views: false,
            ..Default::default()
        },
    );
    let budget = free.initial_size + (free.optimal_size - free.initial_size) * 0.2;

    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    let run = |threads: usize, cost_cache: bool| -> (Row, TuningReport) {
        let opts = TunerOptions {
            with_views: false,
            space_budget: Some(budget),
            max_iterations: 150,
            threads,
            cost_cache,
            ..Default::default()
        };
        // The determinism cross-check below reads the last repeat's
        // report; identical inputs make every repeat's report equal.
        let mut last: Option<TuningReport> = None;
        let wall = median_wall_ms(|| last = Some(tune(&db, &w, &opts)));
        let r = last.expect("median_wall_ms runs the closure");
        let probes = r.cache_hits + r.cache_misses;
        let row = Row {
            threads,
            cost_cache,
            degraded: threads > nproc,
            wall_clock_ms: wall,
            optimizer_calls: r.optimizer_calls,
            cache_hits: r.cache_hits,
            cache_misses: r.cache_misses,
            cache_hit_rate_pct: if probes == 0 {
                0.0
            } else {
                100.0 * r.cache_hits as f64 / probes as f64
            },
            improvement_pct: r.best_improvement_pct(),
        };
        (row, r)
    };

    let mut rows = Vec::new();
    let (uncached, _) = run(1, false);
    rows.push(uncached);
    let mut best_fp: Option<String> = None;
    for threads in [1usize, 2, 4, 8] {
        let (row, report) = run(threads, true);
        rows.push(row);
        // Cross-check the determinism contract while we're here.
        let fp = format!("{:?}", report.best.as_ref().map(|b| (b.cost, &b.config)));
        match &best_fp {
            None => best_fp = Some(fp),
            Some(prev) => assert_eq!(prev, &fp, "thread count changed the recommendation"),
        }
    }

    let wall = |threads: usize, cache: bool| {
        rows.iter()
            .find(|r| r.threads == threads && r.cost_cache == cache)
            .map(|r| r.wall_clock_ms)
            .unwrap_or(f64::NAN)
    };
    let best_parallel = [2usize, 4, 8]
        .iter()
        .map(|&t| wall(t, true))
        .fold(f64::INFINITY, f64::min);
    let summary = Summary {
        nproc,
        speedup_vs_1_thread: wall(1, true) / best_parallel,
        speedup_degraded: nproc < 2,
        cache_speedup_1_thread: wall(1, false) / wall(1, true),
        rows,
    };

    let table: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                if r.cost_cache { "on" } else { "off" }.to_string(),
                if r.degraded { "yes" } else { "" }.to_string(),
                format!("{:.0}", r.wall_clock_ms),
                r.optimizer_calls.to_string(),
                format!("{:.1}", r.cache_hit_rate_pct),
                format!("{:+.1}", r.improvement_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "cache",
                "degr",
                "wall ms",
                "opt calls",
                "hit %",
                "improv %"
            ],
            &table
        )
    );
    println!(
        "nproc: {}   speedup vs 1 thread: {:.2}x{}   cache speedup: {:.2}x",
        summary.nproc,
        summary.speedup_vs_1_thread,
        if summary.speedup_degraded {
            " (degraded: fewer cores than workers)"
        } else {
            ""
        },
        summary.cache_speedup_1_thread
    );

    write_json("BENCH_parallel", &summary);
    std::fs::write("BENCH_parallel.json", summary.to_json().pretty())
        .expect("write BENCH_parallel.json");
    eprintln!("[saved BENCH_parallel.json]");
}
