//! Flat hot-path on/off comparison: wall-clock, per-phase attribution
//! (candidate enumeration, bound pricing, evaluation, skyline), and
//! thread scaling for a 40-iteration TPC-H tuning session.
//!
//! The run also enforces the engine's core contract: the JSONL trace
//! and the recommended configuration are byte-identical whether the
//! flat id-addressed hot path is on or off, at every thread count; and
//! the single-thread speedup must clear a 1.3x floor.
//!
//! The artifact records `nproc` and marks rows whose worker count
//! exceeds the machine's cores as `degraded` — thread "scaling" on a
//! 1-core container is pure overhead, not a property of the engine.
//!
//! Writes `BENCH_hotpath.json` into the current directory (run from
//! the repo root) in addition to the shared results directory.

use pdt_bench::json::ToJson;
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, median_wall_ms, render_table, write_json};
use pdt_trace::Tracer;
use pdt_tuner::{tune, tune_traced, TunerOptions, TuningReport};
use pdt_workloads::tpch;
use std::time::Instant;

struct Phase {
    name: String,
    calls: u64,
    millis: f64,
    allocs: u64,
    alloc_bytes: u64,
}
json_struct!(Phase {
    name,
    calls,
    millis,
    allocs,
    alloc_bytes
});

struct Row {
    flat: bool,
    threads: usize,
    /// Worker count exceeds the machine's cores: the wall-clock on
    /// this row measures oversubscription overhead, not scaling.
    degraded: bool,
    wall_clock_ms: f64,
    optimizer_calls: usize,
    improvement_pct: f64,
    phases: Vec<Phase>,
}
json_struct!(Row {
    flat,
    threads,
    degraded,
    wall_clock_ms,
    optimizer_calls,
    improvement_pct,
    phases
});

struct Summary {
    nproc: usize,
    single_thread_speedup: f64,
    traces_identical: bool,
    rows: Vec<Row>,
}
json_struct!(Summary {
    nproc,
    single_thread_speedup,
    traces_identical,
    rows
});

fn main() {
    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    let db = tpch::tpch_database(0.05);
    let spec = tpch::tpch_workload();
    let w = bind_workload(&db, &spec.statements);

    // Constrained run: a budget barely above the base configuration
    // forces a long relaxation chain — the regime where per-iteration
    // signature hashing and allocation churn dominate.
    let free = tune(
        &db,
        &w,
        &TunerOptions {
            with_views: false,
            ..Default::default()
        },
    );
    let budget = free.initial_size + (free.optimal_size - free.initial_size) * 0.1;

    let run_once = |flat: bool, threads: usize| -> (f64, TuningReport, String) {
        let tracer = Tracer::new();
        let start = Instant::now();
        let r = tune_traced(
            &db,
            &w,
            &TunerOptions {
                with_views: false,
                space_budget: Some(budget),
                max_iterations: 40,
                threads,
                flat_hot_path: flat,
                ..Default::default()
            },
            Some(&tracer),
        );
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let jsonl = tracer.to_jsonl();
        (wall, r, jsonl)
    };

    let run = |flat: bool, threads: usize| -> (Row, TuningReport, String) {
        // One untimed run supplies the report/trace for the identity
        // checks; the shared scaffold medians the timed repeats.
        let (_, report, trace) = run_once(flat, threads);
        let wall = median_wall_ms(|| run_once(flat, threads));
        let phases = report
            .trace
            .as_ref()
            .map(|t| {
                t.hot_phases
                    .iter()
                    .map(|p| Phase {
                        name: p.name.to_string(),
                        calls: p.calls,
                        millis: p.nanos as f64 / 1e6,
                        allocs: p.allocs,
                        alloc_bytes: p.alloc_bytes,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let row = Row {
            flat,
            threads,
            degraded: threads > nproc,
            wall_clock_ms: wall,
            optimizer_calls: report.optimizer_calls,
            improvement_pct: report.best_improvement_pct(),
            phases,
        };
        (row, report, trace)
    };

    let mut rows = Vec::new();
    let mut baseline: Option<(String, String)> = None;
    let mut traces_identical = true;
    for (flat, threads) in [
        (true, 1),
        (true, 2),
        (true, 4),
        (true, 8),
        (false, 1),
        (false, 2),
        (false, 4),
        (false, 8),
    ] {
        let (row, report, trace) = run(flat, threads);
        rows.push(row);
        let fp = format!("{:?}", report.best.as_ref().map(|b| (b.cost, &b.config)));
        match &baseline {
            None => baseline = Some((fp, trace)),
            Some((best_fp, base_trace)) => {
                assert_eq!(
                    best_fp, &fp,
                    "recommendation diverged (flat={flat}, threads={threads})"
                );
                traces_identical &= *base_trace == trace;
                assert_eq!(
                    base_trace, &trace,
                    "trace diverged (flat={flat}, threads={threads})"
                );
            }
        }
    }

    let wall = |flat: bool, threads: usize| {
        rows.iter()
            .find(|r| r.flat == flat && r.threads == threads)
            .map(|r| r.wall_clock_ms)
            .unwrap_or(f64::NAN)
    };
    let single_thread_speedup = wall(false, 1) / wall(true, 1);
    let summary = Summary {
        nproc,
        single_thread_speedup,
        traces_identical,
        rows,
    };

    let table: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|r| {
            let phase_ms = |name: &str| {
                r.phases
                    .iter()
                    .find(|p| p.name == name)
                    .map_or(0.0, |p| p.millis)
            };
            vec![
                if r.flat { "on" } else { "off" }.to_string(),
                r.threads.to_string(),
                if r.degraded { "yes" } else { "" }.to_string(),
                format!("{:.0}", r.wall_clock_ms),
                format!("{:.0}", phase_ms("candidates")),
                format!("{:.0}", phase_ms("pricing")),
                format!("{:.0}", phase_ms("eval")),
                format!("{:.0}", phase_ms("skyline")),
                format!("{:+.1}", r.improvement_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "flat", "threads", "degr", "wall ms", "cand ms", "price ms", "eval ms", "sky ms",
                "improv %"
            ],
            &table
        )
    );
    println!(
        "nproc: {}   1-thread speedup (flat vs reference): {:.2}x   traces identical: {}",
        summary.nproc, summary.single_thread_speedup, summary.traces_identical
    );

    write_json("BENCH_hotpath", &summary);
    std::fs::write("BENCH_hotpath.json", summary.to_json().pretty())
        .expect("write BENCH_hotpath.json");
    eprintln!("[saved BENCH_hotpath.json]");

    assert!(
        single_thread_speedup >= 1.3,
        "single-thread flat hot-path speedup {single_thread_speedup:.2}x is below the 1.3x floor"
    );
}
