//! Ablations of the design choices DESIGN.md calls out: the §3.4
//! penalty heuristic vs. alternatives, the §3.4 configuration-choice
//! heuristic vs. always-min-cost, and the §3.5/§3.6 variations
//! (shortcut evaluation, skyline filtering, shrinking).
//!
//! Reports recommendation quality (improvement %) and work (optimizer
//! calls) at a fixed iteration budget.

use pdt_bench::json_struct;
use pdt_bench::{bind_workload, render_table, write_json};
use pdt_tuner::{tune, ConfigChoice, TransformationChoice, TunerOptions};
use pdt_workloads::{tpch, updates::with_updates};

struct Row {
    variant: String,
    improvement_pct: f64,
    optimizer_calls: usize,
    iterations: usize,
}
json_struct!(Row {
    variant,
    improvement_pct,
    optimizer_calls,
    iterations
});

fn main() {
    let db = tpch::tpch_database(0.05);
    let spec = tpch::tpch_workload();
    let w = bind_workload(&db, &spec.statements);
    let free = tune(
        &db,
        &w,
        &TunerOptions {
            with_views: false,
            ..Default::default()
        },
    );
    let budget = free.initial_size + (free.optimal_size - free.initial_size) * 0.2;

    let run = |label: &str, opts: TunerOptions| -> Row {
        let r = tune(&db, &w, &opts);
        Row {
            variant: label.to_string(),
            improvement_pct: r.best_improvement_pct(),
            optimizer_calls: r.optimizer_calls,
            iterations: r.iterations,
        }
    };
    let base_opts = || TunerOptions {
        with_views: false,
        space_budget: Some(budget),
        max_iterations: 250,
        ..Default::default()
    };

    let mut rows = vec![
        run("penalty + paper heuristic (default)", base_opts()),
        run(
            "transformation: random",
            TunerOptions {
                transformation_choice: TransformationChoice::Random,
                seed: 7,
                ..base_opts()
            },
        ),
        run(
            "transformation: min dT (space-blind)",
            TunerOptions {
                transformation_choice: TransformationChoice::MinCostIncrease,
                ..base_opts()
            },
        ),
        run(
            "config choice: always min-cost",
            TunerOptions {
                config_choice: ConfigChoice::MinCost,
                ..base_opts()
            },
        ),
        run(
            "no shortcut evaluation",
            TunerOptions {
                shortcut_evaluation: false,
                ..base_opts()
            },
        ),
        run(
            "shrink unused each step",
            TunerOptions {
                shrink_unused: true,
                ..base_opts()
            },
        ),
    ];

    // Skyline ablation needs updates to matter (§3.6).
    let mixed = with_updates(&db, &tpch::tpch_workload_variant(4, 10), 0.6, 4);
    let wu = bind_workload(&db, &mixed.statements);
    for (label, skyline) in [
        ("updates: skyline on", true),
        ("updates: skyline off", false),
    ] {
        let r = tune(
            &db,
            &wu,
            &TunerOptions {
                space_budget: Some(f64::MAX),
                max_iterations: 300,
                skyline_filter: skyline,
                ..Default::default()
            },
        );
        rows.push(Row {
            variant: label.to_string(),
            improvement_pct: r.best_improvement_pct(),
            optimizer_calls: r.optimizer_calls,
            iterations: r.iterations,
        });
    }

    println!("Ablations (TPC-H, indexes, 20% budget; update rows: unconstrained)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.2}%", r.improvement_pct),
                r.optimizer_calls.to_string(),
                r.iterations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["variant", "improvement", "optimizer calls", "iterations"],
            &table
        )
    );
    write_json("ablation", &rows);
}
