//! Figure 3 — "Bounding the improvement of the final configuration":
//! the best configuration found over time by a bottom-up tool on a
//! complex 30-query workload, against the relaxation tuner's *known*
//! optimal-improvement bound.
//!
//! The paper's point: with the optimal configuration in hand one can
//! stop the bottom-up tool early; without it one must run to the end.

use pdt_baseline::{BaselineAdvisor, BaselineOptions};
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, write_json};
use pdt_tuner::{tune, TunerOptions};
use pdt_workloads::tpch;

struct Point {
    optimizer_calls: usize,
    improvement_pct: f64,
}
json_struct!(Point {
    optimizer_calls,
    improvement_pct
});

fn main() {
    let db = tpch::tpch_database(0.1);
    let spec = tpch::tpch_workload_variant(123, 30);
    let w = bind_workload(&db, &spec.statements);

    // The bound the relaxation approach computes up front.
    let ptt = tune(&db, &w, &TunerOptions::default());
    let bound = ptt.optimal_improvement_pct();

    let ctt = BaselineAdvisor::new(&db, BaselineOptions::default()).tune(&w);
    let points: Vec<Point> = ctt
        .progress
        .iter()
        .map(|p| Point {
            optimizer_calls: p.optimizer_calls,
            improvement_pct: 100.0 * (1.0 - p.best_cost / ctt.initial_cost),
        })
        .collect();

    println!("Figure 3: bottom-up tool's best configuration over time (30-query workload)\n");
    println!("optimal-improvement bound (known to PTT up front): {bound:.1}%\n");
    println!(
        "{:>16} {:>13}  trajectory",
        "optimizer calls", "improvement"
    );
    let max = points
        .iter()
        .map(|p| p.improvement_pct)
        .fold(1.0f64, f64::max);
    for p in &points {
        let bar = "#".repeat(((p.improvement_pct / max) * 50.0).round().max(0.0) as usize);
        println!(
            "{:>16} {:>12.1}%  {}",
            p.optimizer_calls, p.improvement_pct, bar
        );
    }
    if let Some(last) = points.last() {
        let when_close = points
            .iter()
            .find(|p| p.improvement_pct >= last.improvement_pct - 2.0)
            .expect("last point qualifies");
        println!(
            "\nThe final improvement ({:.1}%) was within 2 points after only {} of {} calls —\n\
             with the optimal bound ({bound:.1}%) known, tuning could stop there (the paper's\n\
             'informed decision of stopping the tuning after 65 minutes').",
            last.improvement_pct, when_close.optimizer_calls, last.optimizer_calls
        );
    }
    write_json("fig3", &points);
}
