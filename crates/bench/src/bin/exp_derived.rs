//! Derived what-if costing on/off comparison: real optimizer
//! invocations, calls avoided beyond coarse keying, and plan-cache
//! reuse for a 40-iteration TPC-H tuning session, crossed with the
//! worker-thread count. The headline number is the **relaxation-loop
//! invocation reduction** — how many times fewer real optimizer
//! invocations the derived engine needs *per relaxation step* than the
//! reference engine for the exact same answer (the reference backs
//! every derived serve with a real call).
//!
//! The setup phase (base evaluation, instrumentation, optimal-config
//! evaluation, budget prepass) prices every query for the first time
//! in both engines — no costing layer can derive a cost it has never
//! seen — so it is measured separately via a `max_iterations: 0`
//! prefix run, which is bitwise the same setup the full session
//! replays. Total-session numbers are reported alongside.
//!
//! The run also enforces the layer's core contract: the JSONL trace
//! and the recommended configuration are byte-identical whether
//! derived costing is on or off, at every thread count.
//!
//! Writes `BENCH_derived.json` into the current directory (run from
//! the repo root) in addition to the shared results directory.

use pdt_bench::json::ToJson;
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, render_table, write_json};
use pdt_opt::invocation_count;
use pdt_trace::Tracer;
use pdt_tuner::{tune, tune_traced, TunerOptions, TuningReport};
use pdt_workloads::tpch;
use std::time::Instant;

struct Row {
    budget_frac: f64,
    derived: bool,
    threads: usize,
    wall_clock_ms: f64,
    real_invocations: u64,
    setup_invocations: u64,
    loop_invocations: u64,
    optimizer_calls: usize,
    calls_avoided: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    plan_cache_repriced: u64,
    cache_hits: u64,
    cache_misses: u64,
    improvement_pct: f64,
}
json_struct!(Row {
    budget_frac,
    derived,
    threads,
    wall_clock_ms,
    real_invocations,
    setup_invocations,
    loop_invocations,
    optimizer_calls,
    calls_avoided,
    plan_cache_hits,
    plan_cache_misses,
    plan_cache_repriced,
    cache_hits,
    cache_misses,
    improvement_pct
});

struct Summary {
    available_parallelism: usize,
    loop_invocation_reduction: f64,
    total_invocation_reduction: f64,
    calls_avoided: u64,
    traces_identical: bool,
    rows: Vec<Row>,
}
json_struct!(Summary {
    available_parallelism,
    loop_invocation_reduction,
    total_invocation_reduction,
    calls_avoided,
    traces_identical,
    rows
});

fn main() {
    let db = tpch::tpch_database(0.05);
    let spec = tpch::tpch_workload();
    let w = bind_workload(&db, &spec.statements);

    // The free (unbudgeted) run anchors the budget scale.
    let free = tune(
        &db,
        &w,
        &TunerOptions {
            with_views: false,
            ..Default::default()
        },
    );

    let run = |budget_frac: f64,
               derived: bool,
               threads: usize,
               iterations: usize|
     -> (Row, TuningReport, String) {
        let budget = free.initial_size + (free.optimal_size - free.initial_size) * budget_frac;
        let tracer = Tracer::new();
        let invocations_before = invocation_count();
        let start = Instant::now();
        let r = tune_traced(
            &db,
            &w,
            &TunerOptions {
                with_views: false,
                space_budget: Some(budget),
                max_iterations: iterations,
                threads,
                derived_costs: derived,
                ..Default::default()
            },
            Some(&tracer),
        );
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let row = Row {
            budget_frac,
            derived,
            threads,
            wall_clock_ms: wall,
            real_invocations: invocation_count() - invocations_before,
            setup_invocations: 0,
            loop_invocations: 0,
            optimizer_calls: r.optimizer_calls,
            calls_avoided: r.optimizer_calls_avoided,
            plan_cache_hits: r.plan_cache_hits,
            plan_cache_misses: r.plan_cache_misses,
            plan_cache_repriced: r.plan_cache_repriced,
            cache_hits: r.cache_hits,
            cache_misses: r.cache_misses,
            improvement_pct: r.best_improvement_pct(),
        };
        let jsonl = tracer.to_jsonl();
        (row, r, jsonl)
    };

    // Two budgets: the mid-size regime (0.5 — halfway between base and
    // optimal size) carries the acceptance floor; the tighter 0.3
    // regime drives deeper relaxation chains, where the beyond-coarse
    // and plan-reuse counters fire.
    let mut rows = Vec::new();
    let mut traces_identical = true;
    for budget_frac in [0.5, 0.3] {
        // Setup prefix: everything before the first relaxation
        // iteration. Both engines price every query for the first time
        // here, so the counts must agree — anything else means the
        // prefix is not a prefix.
        let (setup_on, _, _) = run(budget_frac, true, 1, 0);
        let (setup_off, _, _) = run(budget_frac, false, 1, 0);
        assert_eq!(
            setup_on.real_invocations, setup_off.real_invocations,
            "setup-phase invocations diverged between modes (budget {budget_frac})"
        );
        let setup = setup_on.real_invocations;

        let mut baseline: Option<(String, String)> = None;
        for (derived, threads) in [(true, 1), (true, 4), (false, 1), (false, 4)] {
            let (mut row, report, trace) = run(budget_frac, derived, threads, 40);
            row.setup_invocations = setup;
            row.loop_invocations = row.real_invocations.saturating_sub(setup);
            rows.push(row);
            let fp = format!("{:?}", report.best.as_ref().map(|b| (b.cost, &b.config)));
            match &baseline {
                None => baseline = Some((fp, trace)),
                Some((best_fp, base_trace)) => {
                    assert_eq!(
                        best_fp, &fp,
                        "recommendation diverged \
                         (budget {budget_frac}, derived={derived}, threads={threads})"
                    );
                    traces_identical &= *base_trace == trace;
                    assert_eq!(
                        base_trace, &trace,
                        "trace diverged \
                         (budget {budget_frac}, derived={derived}, threads={threads})"
                    );
                }
            }
        }
    }

    let row_of = |frac: f64, derived: bool, threads: usize| {
        rows.iter()
            .find(|r| r.budget_frac == frac && r.derived == derived && r.threads == threads)
            .expect("row exists")
    };
    let loop_invocation_reduction = row_of(0.5, false, 1).loop_invocations as f64
        / row_of(0.5, true, 1).loop_invocations.max(1) as f64;
    let total_invocation_reduction = row_of(0.5, false, 1).real_invocations as f64
        / row_of(0.5, true, 1).real_invocations.max(1) as f64;
    assert!(
        loop_invocation_reduction >= 2.0,
        "derived costing reduced relaxation-loop optimizer invocations only \
         {loop_invocation_reduction:.2}x ({} -> {}), below the 2x acceptance floor",
        row_of(0.5, false, 1).loop_invocations,
        row_of(0.5, true, 1).loop_invocations,
    );
    let summary = Summary {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        loop_invocation_reduction,
        total_invocation_reduction,
        calls_avoided: rows.iter().map(|r| r.calls_avoided).max().unwrap_or(0),
        traces_identical,
        rows,
    };

    let table: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.budget_frac),
                if r.derived { "on" } else { "off" }.to_string(),
                r.threads.to_string(),
                format!("{:.0}", r.wall_clock_ms),
                r.real_invocations.to_string(),
                r.setup_invocations.to_string(),
                r.loop_invocations.to_string(),
                r.calls_avoided.to_string(),
                r.plan_cache_hits.to_string(),
                format!("{:+.1}", r.improvement_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "budget",
                "derived",
                "threads",
                "wall ms",
                "real calls",
                "setup",
                "loop",
                "avoided",
                "plan hits",
                "improv %"
            ],
            &table
        )
    );
    println!(
        "loop invocation reduction: {:.2}x   total: {:.2}x   calls avoided: {}   \
         traces identical: {}",
        summary.loop_invocation_reduction,
        summary.total_invocation_reduction,
        summary.calls_avoided,
        summary.traces_identical
    );

    write_json("BENCH_derived", &summary);
    std::fs::write("BENCH_derived.json", summary.to_json().pretty())
        .expect("write BENCH_derived.json");
    eprintln!("[saved BENCH_derived.json]");
}
