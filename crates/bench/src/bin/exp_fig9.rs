//! Figure 9 — "Quality of recommendations for UPDATE workloads":
//! ΔImprovement per workload when the workloads contain
//! UPDATE/INSERT/DELETE statements. PTT runs iteration-bounded (the
//! paper gave it 15/30 minutes; CTT was unbounded).

use pdt_baseline::{BaselineAdvisor, BaselineOptions};
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, render_delta_bars, write_json, DeltaSummary};
use pdt_catalog::Database;
use pdt_sql::Statement;
use pdt_tuner::{tune, TunerOptions};
use pdt_workloads::star::{star_database, star_workload, StarParams};
use pdt_workloads::tpch;
use pdt_workloads::updates::with_updates;

struct Panel {
    name: String,
    deltas: Vec<f64>,
    summary: DeltaSummary,
}
json_struct!(Panel {
    name,
    deltas,
    summary
});

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    let tpch_db = tpch::tpch_database(0.05);
    let p1 = StarParams::ds1();
    let ds1 = star_database(&p1);
    let mut panels = Vec::new();

    for with_views in [false, true] {
        let mode = if with_views {
            "indexes+views"
        } else {
            "indexes"
        };
        // PTT gets a bounded run, as in the paper (15 min for indexes,
        // 30 min for indexes+views — scaled to iterations here).
        let iters = if with_views { 500 } else { 300 };

        let mut deltas = Vec::with_capacity(2 * n);
        for seed in 0..n as u64 {
            let base = tpch::tpch_workload_variant(seed, 8);
            let mixed = with_updates(&tpch_db, &base, 0.6, seed);
            deltas.push(delta(&tpch_db, &mixed.statements, with_views, iters));
        }
        for seed in 0..n as u64 {
            let base = star_workload(&p1, seed, 10);
            let mixed = with_updates(&ds1, &base, 0.6, seed);
            deltas.push(delta(&ds1, &mixed.statements, with_views, iters));
        }
        let summary = DeltaSummary::from(&deltas);
        panels.push(Panel {
            name: format!("UPDATE workloads ({mode})"),
            deltas,
            summary,
        });
    }

    println!("Figure 9: dImprovement for UPDATE workloads (PTT iteration-bounded)\n");
    for p in &panels {
        println!("== {} ==", p.name);
        println!("{}", render_delta_bars(&p.deltas));
        let s = &p.summary;
        let ge = s.workloads - s.ptt_losses_over_1pct;
        println!(
            "PTT >= CTT (within 1%): {}/{} ({:.0}%)  worst case: {:.1}\n",
            ge,
            s.workloads,
            100.0 * ge as f64 / s.workloads as f64,
            s.min_delta,
        );
    }
    println!(
        "The paper reports 83% of update workloads at equal-or-better quality and,\n\
         with one exception, at most 5% degradation — the same shape as above."
    );
    write_json("fig9", &panels);
}

fn delta(db: &Database, statements: &[Statement], with_views: bool, iters: usize) -> f64 {
    let w = bind_workload(db, statements);
    let ptt = tune(
        db,
        &w,
        &TunerOptions {
            with_views,
            // Updates: no space cap, but bounded iterations.
            space_budget: Some(f64::MAX),
            max_iterations: iters,
            ..Default::default()
        },
    );
    let ctt = BaselineAdvisor::new(
        db,
        BaselineOptions {
            with_views,
            ..Default::default()
        },
    )
    .tune(&w);
    ptt.best_improvement_pct() - ctt.improvement_pct()
}
