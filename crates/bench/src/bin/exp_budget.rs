//! What-if call-budget frontier: recommendation quality and real
//! optimizer invocations as a function of `--optimizer-call-budget`,
//! from a starved budget up through the exact (unlimited) tier, over
//! a panel of update-heavy TPC-H workload variants.
//!
//! The headline numbers are the two sides of the approximate tier's
//! contract: the **governed-invocation reduction** — how many times
//! fewer real invocations the budgeted tier makes in the phases the
//! budget governs (pre-pass + relaxation loop + final validation) —
//! and the **quality ratio**, the budgeted recommendation's cost over
//! the exact tier's on the same workload. The base prefix (base
//! evaluation, instrumentation, optimal-config evaluation) prices
//! every query for the first time in both tiers and is exempt from
//! the budget, so it is measured separately — a traced
//! `max_iterations: 0` run minus its pre-pass calls, the pre-pass
//! being budget-governed — and subtracted from every row.
//!
//! A single read-only TPC-H session is a poor probe here: derived
//! costing already serves almost every relaxation-loop call, leaving
//! single-digit governed counts. UPDATE statements are what keep the
//! §3.3.2 bound gap wide (replacement costs carry update shells), so
//! the frontier is measured across seeded update-mix variants and the
//! counters are summed over the panel, mirroring the ε-quality
//! contract harness in `tests/budget_quality.rs`.
//!
//! Writes `BENCH_budget.json` into the current directory (run from
//! the repo root) in addition to the shared results directory.

use pdt_bench::json::ToJson;
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, median_wall_ms, render_table, write_json};
use pdt_opt::invocation_count;
use pdt_trace::{json, Tracer};
use pdt_tuner::{tune, tune_traced, TunerOptions, Workload};
use pdt_workloads::tpch;
use pdt_workloads::updates::with_updates;

struct Row {
    /// 0 encodes the unlimited (exact) tier.
    call_budget: u64,
    wall_clock_ms: f64,
    real_invocations: u64,
    base_prefix_invocations: u64,
    governed_invocations: u64,
    estimates_served: u64,
    /// Seeds whose session ran the budget dry (stopped on
    /// `CallBudget` or finished with nothing left).
    exhausted_seeds: usize,
    /// Worst budgeted-over-exact cost ratio across the panel
    /// (1.0 = identical recommendation quality).
    worst_quality_ratio: f64,
    mean_quality_ratio: f64,
    mean_improvement_pct: f64,
}
json_struct!(Row {
    call_budget,
    wall_clock_ms,
    real_invocations,
    base_prefix_invocations,
    governed_invocations,
    estimates_served,
    exhausted_seeds,
    worst_quality_ratio,
    mean_quality_ratio,
    mean_improvement_pct
});

struct Summary {
    seeds: usize,
    queries_per_seed: usize,
    available_parallelism: usize,
    governed_invocation_reduction: f64,
    worst_ample_quality_ratio: f64,
    rows: Vec<Row>,
}
json_struct!(Summary {
    seeds,
    queries_per_seed,
    available_parallelism,
    governed_invocation_reduction,
    worst_ample_quality_ratio,
    rows
});

/// Finite budget that never binds on this panel — measures the serve
/// policy's savings without exhaustion cutoffs.
const AMPLE: usize = 100_000;
const SEEDS: u64 = 8;
const QUERIES: usize = 12;
const UPDATE_RATIO: f64 = 0.75;

/// Real invocations of `eval.commit` events inside the pre-pass span.
fn prepass_trace_calls(tracer: &Tracer) -> u64 {
    let mut stack: Vec<String> = Vec::new();
    let mut calls = 0u64;
    for line in tracer.to_jsonl().lines() {
        let ev = json::parse(line).expect("trace line parses");
        match ev.get("kind").and_then(|k| k.as_str()) {
            Some("span.begin") => stack.push(
                ev.get("name")
                    .and_then(|n| n.as_str())
                    .unwrap_or_default()
                    .to_string(),
            ),
            Some("span.end") => {
                stack.pop();
            }
            Some("eval.commit") if stack.last().is_some_and(|s| s == "prepass") => {
                calls += ev.get("calls").and_then(|c| c.as_i64()).unwrap_or(0) as u64;
            }
            _ => {}
        }
    }
    calls
}

struct Panel {
    workload: Workload,
    options: TunerOptions,
    /// Budget-exempt setup invocations: a zero-iteration exact run's
    /// total minus its (budget-governed) pre-pass.
    base_prefix: u64,
    exact_cost: f64,
}

fn main() {
    let db = tpch::tpch_database(0.05);

    let panel: Vec<Panel> = (0..SEEDS)
        .map(|seed| {
            let spec = with_updates(
                &db,
                &tpch::tpch_workload_variant(seed, QUERIES),
                UPDATE_RATIO,
                seed,
            );
            let w = bind_workload(&db, &spec.statements);
            // The free run anchors the space-budget scale; 10% of the
            // optimal configuration's extra space is the regime where
            // relaxation chains run long enough for the call budget to
            // matter.
            let free = tune(&db, &w, &TunerOptions::default());
            let space = free.initial_size + (free.optimal_size - free.initial_size) * 0.1;
            let options = TunerOptions {
                space_budget: Some(space),
                max_iterations: 40,
                ..Default::default()
            };
            let tracer = Tracer::new();
            let before = invocation_count();
            let _ = tune_traced(
                &db,
                &w,
                &TunerOptions {
                    max_iterations: 0,
                    ..options.clone()
                },
                Some(&tracer),
            );
            let base_prefix = (invocation_count() - before) - prepass_trace_calls(&tracer);
            Panel {
                workload: w,
                options,
                base_prefix,
                exact_cost: f64::NAN,
            }
        })
        .collect();

    let sweep = |panel: &[Panel], calls: Option<usize>| -> Vec<(u64, pdt_tuner::TuningReport)> {
        panel
            .iter()
            .map(|p| {
                let opts = TunerOptions {
                    optimizer_call_budget: calls,
                    ..p.options.clone()
                };
                let before = invocation_count();
                let r = tune(&db, &p.workload, &opts);
                (invocation_count() - before, r)
            })
            .collect()
    };

    let row_for = |panel: &[Panel], calls: Option<usize>| -> Row {
        let runs = sweep(panel, calls);
        let wall = median_wall_ms(|| sweep(panel, calls));
        let base_prefix: u64 = panel.iter().map(|p| p.base_prefix).sum();
        let real: u64 = runs.iter().map(|(n, _)| n).sum();
        let ratios: Vec<f64> = runs
            .iter()
            .zip(panel)
            .map(|((_, r), p)| r.best.as_ref().map_or(f64::NAN, |b| b.cost) / p.exact_cost)
            .collect();
        Row {
            call_budget: calls.unwrap_or(0) as u64,
            wall_clock_ms: wall,
            real_invocations: real,
            base_prefix_invocations: base_prefix,
            governed_invocations: real.saturating_sub(base_prefix),
            estimates_served: runs.iter().map(|(_, r)| r.optimizer_calls_skipped).sum(),
            exhausted_seeds: runs
                .iter()
                .filter(|(_, r)| r.budget_remaining == Some(0))
                .count(),
            worst_quality_ratio: ratios.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean_quality_ratio: ratios.iter().sum::<f64>() / ratios.len() as f64,
            mean_improvement_pct: runs
                .iter()
                .map(|(_, r)| r.best_improvement_pct())
                .sum::<f64>()
                / runs.len() as f64,
        }
    };

    // Exact tier first: its per-seed costs are the quality yardstick.
    let exact_runs = sweep(&panel, None);
    let panel: Vec<Panel> = panel
        .into_iter()
        .zip(&exact_runs)
        .map(|(p, (_, r))| Panel {
            exact_cost: r.best.as_ref().map_or(f64::NAN, |b| b.cost),
            ..p
        })
        .collect();

    let mut rows = Vec::new();
    for budget in [8usize, 16, 32, 64, AMPLE] {
        rows.push(row_for(&panel, Some(budget)));
    }
    rows.push(row_for(&panel, None));

    let exact = rows.last().expect("exact row exists");
    let ample = rows
        .iter()
        .find(|r| r.call_budget == AMPLE as u64)
        .expect("ample row exists");
    let governed_invocation_reduction =
        exact.governed_invocations as f64 / ample.governed_invocations.max(1) as f64;
    let worst_ample_quality_ratio = ample.worst_quality_ratio;

    // The two-sided contract, enforced where the budget never binds:
    // every seed's quality within ε = 5% of the exact tier, governed
    // invocations down at least 5x across the panel.
    assert!(
        worst_ample_quality_ratio <= 1.05,
        "ample-budget recommendation missed the ε contract: \
         worst quality ratio {worst_ample_quality_ratio:.4}"
    );
    assert!(
        governed_invocation_reduction >= 5.0,
        "governed invocations only fell {} -> {}, \
         {governed_invocation_reduction:.2}x is below the 5x floor",
        exact.governed_invocations,
        ample.governed_invocations,
    );

    let summary = Summary {
        seeds: SEEDS as usize,
        queries_per_seed: QUERIES,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        governed_invocation_reduction,
        worst_ample_quality_ratio,
        rows,
    };

    let table: Vec<Vec<String>> = summary
        .rows
        .iter()
        .map(|r| {
            vec![
                if r.call_budget == 0 {
                    "unlimited".to_string()
                } else if r.call_budget == AMPLE as u64 {
                    "ample".to_string()
                } else {
                    r.call_budget.to_string()
                },
                format!("{:.0}", r.wall_clock_ms),
                r.real_invocations.to_string(),
                r.governed_invocations.to_string(),
                r.estimates_served.to_string(),
                r.exhausted_seeds.to_string(),
                format!("{:.4}", r.worst_quality_ratio),
                format!("{:.4}", r.mean_quality_ratio),
                format!("{:+.1}", r.mean_improvement_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "call budget",
                "wall ms",
                "real calls",
                "governed",
                "served",
                "dry",
                "worst qual",
                "mean qual",
                "improv %"
            ],
            &table
        )
    );
    println!(
        "governed invocation reduction at ample budget: {:.2}x   worst quality ratio: {:.4}",
        summary.governed_invocation_reduction, summary.worst_ample_quality_ratio
    );

    write_json("BENCH_budget", &summary);
    std::fs::write("BENCH_budget.json", summary.to_json().pretty())
        .expect("write BENCH_budget.json");
    eprintln!("[saved BENCH_budget.json]");
}
