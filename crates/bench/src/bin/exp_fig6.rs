//! Figure 6 — "Candidate transformations for a TPC-H workload": the
//! number of transformations available at each iteration of the
//! relaxation search (instantiating line 5 with the last relaxed
//! configuration).

use pdt_bench::{bind_workload, write_json};
use pdt_tuner::{tune, TunerOptions};
use pdt_workloads::tpch;

fn main() {
    let db = tpch::tpch_database(0.1);
    let spec = tpch::tpch_workload();
    let w = bind_workload(&db, &spec.statements);

    let free = tune(&db, &w, &TunerOptions::default());
    let budget = free.initial_size + (free.optimal_size - free.initial_size) * 0.25;
    let report = tune(
        &db,
        &w,
        &TunerOptions {
            space_budget: Some(budget),
            max_iterations: 120,
            ..Default::default()
        },
    );

    println!("Figure 6: candidate transformations per search iteration (22-query TPC-H)\n");
    println!("{:>9} {:>15}", "iteration", "transformations");
    let max = report
        .candidate_counts
        .iter()
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    for (i, n) in report.candidate_counts.iter().enumerate() {
        if i % 4 != 0 {
            continue; // sample every 4th iteration for readability
        }
        let bar = "#".repeat((n * 60 / max).max(usize::from(*n > 0)));
        println!("{:>9} {:>15}  {}", i + 1, n, bar);
    }
    println!(
        "\ntotal candidate transformations enumerated: {}\n\
         Hundreds of transformations per iteration make exhaustive search\n\
         infeasible — the paper's motivation for the penalty heuristic.",
        report.candidate_counts.iter().sum::<usize>()
    );
    write_json("fig6", &report.candidate_counts);
}
