//! Table 3 — "Tuning time for the most expensive workloads": the
//! top-10 workloads by CTT tuning time, with PTT's time to reach the
//! optimal configuration and both tools' improvements (no space
//! constraints, SELECT-only — §4.1).

use pdt_baseline::{BaselineAdvisor, BaselineOptions};
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, render_table, write_json};
use pdt_tuner::{tune, TunerOptions};
use pdt_workloads::star::{star_database, star_workload, StarParams};
use pdt_workloads::tpch;

struct Row {
    workload: String,
    ctt_ms: f64,
    ptt_ms: f64,
    ctt_calls: usize,
    ptt_calls: usize,
    impr_ctt: f64,
    impr_ptt: f64,
}
json_struct!(Row {
    workload,
    ctt_ms,
    ptt_ms,
    ctt_calls,
    ptt_calls,
    impr_ctt,
    impr_ptt
});

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // TPC-H canonical + variants (indexes and views).
    let tpch_db = tpch::tpch_database(0.1);
    let mut specs = vec![("tpch-22-IV".to_string(), tpch::tpch_workload())];
    for seed in 0..6u64 {
        specs.push((
            format!("tpch-v{seed}-IV"),
            tpch::tpch_workload_variant(seed, 14),
        ));
    }
    for (name, spec) in specs {
        rows.push(run(&name, &tpch_db, &spec.statements));
    }

    // DS1 star workloads.
    let p = StarParams::ds1();
    let ds1 = star_database(&p);
    for seed in 0..5u64 {
        let spec = star_workload(&p, seed, 12);
        rows.push(run(&format!("ds1-w{seed}-IV"), &ds1, &spec.statements));
    }

    rows.sort_by(|a, b| b.ctt_ms.total_cmp(&a.ctt_ms));
    rows.truncate(10);

    println!("Table 3: tuning time for the 10 most expensive workloads (no constraints)\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.0} ms ({} calls)", r.ctt_ms, r.ctt_calls),
                format!("{:.0} ms ({} calls)", r.ptt_ms, r.ptt_calls),
                format!("{:.1}%", r.impr_ctt),
                format!("{:.1}%", r.impr_ptt),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["workload", "time CTT", "time PTT", "impr CTT", "impr PTT"],
            &table_rows,
        )
    );
    println!(
        "PTT reaches its (optimal) recommendation in a fraction of CTT's time:\n\
         with no space constraint the instrumented first pass *is* the answer,\n\
         while CTT still pays for merging and greedy enumeration (§4.1)."
    );
    write_json("table3", &rows);
}

fn run(name: &str, db: &pdt_catalog::Database, statements: &[pdt_sql::Statement]) -> Row {
    let w = bind_workload(db, statements);
    let ptt = tune(db, &w, &TunerOptions::default());
    let ctt = BaselineAdvisor::new(db, BaselineOptions::default()).tune(&w);
    Row {
        workload: name.to_string(),
        ctt_ms: ctt.elapsed.as_secs_f64() * 1e3,
        ptt_ms: ptt.elapsed.as_secs_f64() * 1e3,
        ctt_calls: ctt.optimizer_calls,
        ptt_calls: ptt.optimizer_calls,
        impr_ctt: ctt.improvement_pct(),
        impr_ptt: ptt.best_improvement_pct(),
    }
}
