//! Figure 4 — "Relaxation-based search for a TPC-H database": the
//! size/cost trajectory of the relaxation search when tuning TPC-H for
//! indexes, annotated with the initial, optimal and best-under-budget
//! configurations.

use pdt_bench::json_struct;
use pdt_bench::{bind_workload, write_json};
use pdt_tuner::{tune, TunerOptions};
use pdt_workloads::tpch;

struct Point {
    size_mb: f64,
    cost: f64,
    fits: bool,
}
json_struct!(Point {
    size_mb,
    cost,
    fits
});

fn main() {
    let db = tpch::tpch_database(0.1);
    let spec = tpch::tpch_workload();
    let w = bind_workload(&db, &spec.statements);

    // Discover the unconstrained extremes first (index-only, as in the
    // paper's figure).
    let free = tune(
        &db,
        &w,
        &TunerOptions {
            with_views: false,
            ..Default::default()
        },
    );
    // The paper's setting: the optimal requires ~6 GB, the budget is
    // 1.75 GB, i.e. ~28% of optimal. Reproduce the ratio.
    let budget = free.initial_size + (free.optimal_size - free.initial_size) * 0.28;
    let report = tune(
        &db,
        &w,
        &TunerOptions {
            with_views: false,
            space_budget: Some(budget),
            max_iterations: 500,
            ..Default::default()
        },
    );

    println!("Figure 4: relaxation-based search for TPC-H (indexes only)\n");
    println!(
        "initial configuration : {:>8.1} MB, cost {:>10.0}",
        report.initial_size / 1e6,
        report.initial_cost
    );
    println!(
        "optimal configuration : {:>8.1} MB, cost {:>10.0}  ({:.1}% improvement)",
        report.optimal_size / 1e6,
        report.optimal_cost,
        report.optimal_improvement_pct()
    );
    println!("space budget          : {:>8.1} MB", budget / 1e6);
    if let Some(best) = &report.best {
        println!(
            "best under budget     : {:>8.1} MB, cost {:>10.0}  ({:.1}% improvement)\n",
            best.size_bytes / 1e6,
            best.cost,
            report.best_improvement_pct()
        );
    }

    // Scatter of explored configurations, bucketed by size.
    let mut points: Vec<Point> = report
        .frontier
        .iter()
        .map(|p| Point {
            size_mb: p.size_bytes / 1e6,
            cost: p.cost,
            fits: p.fits,
        })
        .collect();
    points.sort_by(|a, b| a.size_mb.total_cmp(&b.size_mb));

    println!(
        "{:>10} {:>12}  (cost, * = within budget)",
        "size (MB)", "est. cost"
    );
    let min_c = points.iter().map(|p| p.cost).fold(f64::INFINITY, f64::min);
    let max_c = points.iter().map(|p| p.cost).fold(1.0f64, f64::max);
    // Pareto lower envelope per size bucket for a readable curve.
    let buckets = 30usize;
    let min_s = points.first().map(|p| p.size_mb).unwrap_or(0.0);
    let max_s = points
        .last()
        .map(|p| p.size_mb)
        .unwrap_or(1.0)
        .max(min_s + 1.0);
    for b in 0..buckets {
        let lo = min_s + (max_s - min_s) * b as f64 / buckets as f64;
        let hi = min_s + (max_s - min_s) * (b + 1) as f64 / buckets as f64;
        let best = points
            .iter()
            .filter(|p| p.size_mb >= lo && p.size_mb < hi)
            .min_by(|a, b| a.cost.total_cmp(&b.cost));
        if let Some(p) = best {
            let frac = ((p.cost - min_c) / (max_c - min_c).max(1e-9) * 50.0).round() as usize;
            println!(
                "{:>10.1} {:>12.0}  {}{}",
                p.size_mb,
                p.cost,
                " ".repeat(frac),
                if p.fits { "*" } else { "o" }
            );
        }
    }
    println!(
        "\nThe steep cost climb at small sizes and the flat region near the optimal\n\
         reproduce the paper's trade-off curve; every point is a usable alternative\n\
         recommendation (the DBA by-product the paper highlights)."
    );
    write_json("fig4", &points);
}
