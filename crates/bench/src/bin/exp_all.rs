//! Run the complete experiment suite (every table and figure) in
//! sequence, mirroring `EXPERIMENTS.md`. Accepts an optional scale
//! argument for the Fig. 8/9 panel sizes (default 20/12).
//!
//! ```sh
//! cargo run --release -p pdt-bench --bin exp_all [panel_size]
//! ```

use std::process::Command;
use std::time::Instant;

fn main() {
    let panel: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let fig9_panel = (panel * 3 / 5).max(4);
    let me = std::env::current_exe().expect("own path");
    let bin_dir = me.parent().expect("bin dir").to_path_buf();

    let experiments: Vec<(&str, Vec<String>)> = vec![
        ("exp_table1", vec![]),
        ("exp_table2", vec![]),
        ("exp_table3", vec![]),
        ("exp_fig3", vec![]),
        ("exp_fig4", vec![]),
        ("exp_fig6", vec![]),
        ("exp_fig8", vec![panel.to_string()]),
        ("exp_fig9", vec![fig9_panel.to_string()]),
        ("exp_fig10", vec![]),
        ("exp_ablation", vec![]),
    ];

    let total = Instant::now();
    let mut failures = 0;
    for (name, args) in &experiments {
        let start = Instant::now();
        eprintln!("==> {name} {args:?}");
        let status = Command::new(bin_dir.join(name))
            .args(args)
            .status()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        eprintln!("<== {name}: {:?} ({:?})\n", status, start.elapsed());
        if !status.success() {
            failures += 1;
        }
    }
    eprintln!(
        "experiment suite finished in {:?}: {} of {} succeeded",
        total.elapsed(),
        experiments.len() - failures,
        experiments.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
