//! Table 1 — "Index and view requests for a typical TPC-H workload."
//!
//! Counts, per TPC-H query, the index and view requests the optimizer
//! issues during instrumented optimization and the structures the
//! tuner simulates in response.

use pdt_bench::json_struct;
use pdt_bench::{render_table, write_json};
use pdt_opt::Optimizer;
use pdt_physical::Configuration;
use pdt_tuner::instrument::OptimalSink;
use pdt_tuner::Workload;
use pdt_workloads::tpch;

struct Row {
    query: usize,
    index_requests: usize,
    view_requests: usize,
    simulated_indexes: usize,
    simulated_views: usize,
}
json_struct!(Row {
    query,
    index_requests,
    view_requests,
    simulated_indexes,
    simulated_views
});

fn main() {
    let sf = 0.1;
    let db = tpch::tpch_database(sf);
    let spec = tpch::tpch_workload();
    let workload = Workload::bind(&db, &spec.statements).expect("tpch binds");
    let opt = Optimizer::new(&db);

    let mut rows = Vec::new();
    let mut total = Row {
        query: 0,
        index_requests: 0,
        view_requests: 0,
        simulated_indexes: 0,
        simulated_views: 0,
    };
    for (i, entry) in workload.entries.iter().enumerate() {
        let Some(q) = &entry.select else { continue };
        let mut config = Configuration::base(&db);
        let mut sink = OptimalSink::new(true);
        opt.optimize_with_sink(&mut config, q, &mut sink);
        let row = Row {
            query: i + 1,
            index_requests: sink.index_requests,
            view_requests: sink.view_requests,
            simulated_indexes: sink.created_indexes,
            simulated_views: sink.created_views,
        };
        total.index_requests += row.index_requests;
        total.view_requests += row.view_requests;
        total.simulated_indexes += row.simulated_indexes;
        total.simulated_views += row.simulated_views;
        rows.push(row);
    }

    println!("Table 1: index and view requests for the 22-query TPC-H workload (SF {sf})\n");
    let mut table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("Q{}", r.query),
                r.index_requests.to_string(),
                r.view_requests.to_string(),
                r.simulated_indexes.to_string(),
                r.simulated_views.to_string(),
            ]
        })
        .collect();
    table_rows.push(vec![
        "TOTAL".into(),
        total.index_requests.to_string(),
        total.view_requests.to_string(),
        total.simulated_indexes.to_string(),
        total.simulated_views.to_string(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "query",
                "index requests",
                "view requests",
                "simulated indexes",
                "simulated views",
            ],
            &table_rows,
        )
    );
    println!(
        "The number of simulated structures ({} indexes, {} views) stays small\n\
         relative to the requests analyzed ({} + {}), as the paper reports.",
        total.simulated_indexes, total.simulated_views, total.index_requests, total.view_requests
    );
    write_json("table1", &rows);
}
