//! Figure 8 — "Quality of recommendations when using PTT and CTT for
//! varying databases and workloads": ΔImprovement = Improvement_PTT −
//! Improvement_CTT per workload, without time or space constraints,
//! for {TPC-H, DS1, BENCH} × {indexes only, indexes and views}.

use pdt_baseline::{BaselineAdvisor, BaselineOptions};
use pdt_bench::json_struct;
use pdt_bench::{bind_workload, render_delta_bars, write_json, DeltaSummary};
use pdt_catalog::Database;
use pdt_sql::Statement;
use pdt_tuner::{tune, TunerOptions};
use pdt_workloads::bench::{bench_database, bench_workload, BenchParams};
use pdt_workloads::star::{star_database, star_workload, StarParams};
use pdt_workloads::tpch;

struct Panel {
    name: String,
    deltas: Vec<f64>,
    summary: DeltaSummary,
}
json_struct!(Panel {
    name,
    deltas,
    summary
});

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    let mut panels: Vec<Panel> = Vec::new();
    let tpch_db = tpch::tpch_database(0.05);
    let p1 = StarParams::ds1();
    let ds1 = star_database(&p1);
    let bench_db_ = bench_database(&BenchParams::default());

    for with_views in [false, true] {
        let mode = if with_views {
            "indexes+views"
        } else {
            "indexes"
        };

        let mut deltas = Vec::with_capacity(n);
        for seed in 0..n as u64 {
            let spec = tpch::tpch_workload_variant(seed, 10);
            deltas.push(delta(&tpch_db, &spec.statements, with_views));
        }
        panels.push(mk_panel(format!("TPC-H ({mode})"), deltas));

        let mut deltas = Vec::with_capacity(n);
        for seed in 0..n as u64 {
            let spec = star_workload(&p1, seed, 12);
            deltas.push(delta(&ds1, &spec.statements, with_views));
        }
        panels.push(mk_panel(format!("DS1 ({mode})"), deltas));

        let mut deltas = Vec::with_capacity(n);
        for seed in 0..n as u64 {
            let spec = bench_workload(&bench_db_, seed, 15);
            deltas.push(delta(&bench_db_, &spec.statements, with_views));
        }
        panels.push(mk_panel(format!("BENCH ({mode})"), deltas));
    }

    println!("Figure 8: dImprovement = Improvement_PTT - Improvement_CTT, no constraints\n");
    for p in &panels {
        println!("== {} ==", p.name);
        println!("{}", render_delta_bars(&p.deltas));
        println!(
            "ties (<=1%): {}  PTT wins (>1%): {}  PTT losses (<-1%): {}  max: {:.1}  mean: {:.2}\n",
            p.summary.ties_within_1pct,
            p.summary.ptt_wins_over_1pct,
            p.summary.ptt_losses_over_1pct,
            p.summary.max_delta,
            p.summary.mean_delta,
        );
    }
    let all: Vec<f64> = panels
        .iter()
        .flat_map(|p| p.deltas.iter().copied())
        .collect();
    let overall = DeltaSummary::from(&all);
    println!(
        "OVERALL: {} workloads — {:.0}% ties, {:.0}% PTT wins, {:.0}% PTT losses\n\
         (the paper reports ~64% ties, ~34% wins, <2% losses; views amplify wins)",
        overall.workloads,
        100.0 * overall.ties_within_1pct as f64 / overall.workloads as f64,
        100.0 * overall.ptt_wins_over_1pct as f64 / overall.workloads as f64,
        100.0 * overall.ptt_losses_over_1pct as f64 / overall.workloads as f64,
    );
    write_json("fig8", &panels);
}

fn mk_panel(name: String, deltas: Vec<f64>) -> Panel {
    let summary = DeltaSummary::from(&deltas);
    Panel {
        name,
        deltas,
        summary,
    }
}

fn delta(db: &Database, statements: &[Statement], with_views: bool) -> f64 {
    let w = bind_workload(db, statements);
    let ptt = tune(
        db,
        &w,
        &TunerOptions {
            with_views,
            ..Default::default()
        },
    );
    let ctt = BaselineAdvisor::new(
        db,
        BaselineOptions {
            with_views,
            ..Default::default()
        },
    )
    .tune(&w);
    ptt.best_improvement_pct() - ctt.improvement_pct()
}
