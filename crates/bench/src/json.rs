//! A minimal JSON emitter so the harness writes machine-readable
//! results without an external serialization dependency (the workspace
//! builds fully offline). Only what the experiment binaries need:
//! objects, arrays, strings, numbers, bools — pretty-printed with
//! stable key order (declaration order).

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-print with two-space indentation (trailing newline).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                // JSON has no NaN/Infinity; map them to null like
                // serde_json's lossy writers do.
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into [`Json`]; implemented for primitives, collections,
/// and (via [`crate::json_struct!`]) the experiment result structs.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

int_to_json!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl ToJson for std::time::Duration {
    fn to_json(&self) -> Json {
        Json::Num(self.as_secs_f64())
    }
}

/// Derive [`ToJson`] for a struct by listing its fields:
///
/// ```ignore
/// struct Point { x: f64, y: f64 }
/// json_struct!(Point { x, y });
/// ```
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field))),*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::Obj(vec![
            ("name".into(), "q\"1\"".to_json()),
            ("cost".into(), 12.5.to_json()),
            ("tags".into(), vec!["a", "b"].to_json()),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"q\\\"1\\\"\""), "{s}");
        assert!(s.contains("\"cost\": 12.5"), "{s}");
        assert!(s.contains("\"empty\": []"), "{s}");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(f64::NAN.to_json().pretty(), "null\n");
        assert_eq!(f64::INFINITY.to_json().pretty(), "null\n");
    }

    #[test]
    fn json_struct_macro_emits_declaration_order() {
        struct P {
            b: f64,
            a: usize,
        }
        json_struct!(P { b, a });
        let s = P { b: 1.0, a: 2 }.to_json().pretty();
        let (bi, ai) = (s.find("\"b\"").unwrap(), s.find("\"a\"").unwrap());
        assert!(bi < ai, "{s}");
    }
}
