//! Micro-benchmarks for the per-call building blocks: parsing,
//! binding, selectivity estimation, size modelling, access-path
//! selection, whole-query optimization, transformation enumeration and
//! cost-bound evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pdt_expr::Binder;
use pdt_opt::Optimizer;
use pdt_physical::size::SizeModel;
use pdt_physical::{Configuration, PhysicalSchema};
use pdt_tuner::bound::{cost_upper_bound, ViewBuildCosts};
use pdt_tuner::eval::evaluate_full;
use pdt_tuner::instrument::gather_optimal_configuration;
use pdt_tuner::transform::{apply, candidates, Transformation};
use pdt_tuner::Workload;
use pdt_workloads::tpch;

fn bench_frontend(c: &mut Criterion) {
    let sql = "SELECT l_orderkey, SUM(l_extendedprice), o_orderdate FROM customer, orders, lineitem \
               WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND o_orderdate < 1000 \
               AND l_shipdate > 1000 GROUP BY l_orderkey, o_orderdate ORDER BY o_orderdate";
    c.bench_function("parse_q3", |b| {
        b.iter(|| pdt_sql::parse_statement(std::hint::black_box(sql)).unwrap())
    });

    let db = tpch::tpch_database(0.1);
    let stmt = pdt_sql::parse_statement(sql).unwrap();
    c.bench_function("bind_q3", |b| {
        let binder = Binder::new(&db);
        b.iter(|| binder.bind(std::hint::black_box(&stmt)).unwrap())
    });
}

fn bench_estimation(c: &mut Criterion) {
    let db = tpch::tpch_database(0.1);
    let li = db.table_by_name("lineitem").unwrap();
    let shipdate = &li.column(10).stats;
    c.bench_function("histogram_range_selectivity", |b| {
        b.iter(|| {
            shipdate.range_selectivity(
                std::hint::black_box(Some((800.0, true))),
                std::hint::black_box(Some((1200.0, false))),
            )
        })
    });

    let config = Configuration::base(&db);
    let schema = PhysicalSchema::new(&db, &config);
    let model = SizeModel::default();
    let ci = config.clustered_index_on(li.id).unwrap();
    c.bench_function("btree_size_model", |b| {
        b.iter(|| model.index_bytes(&schema, std::hint::black_box(ci)))
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let db = tpch::tpch_database(0.1);
    let spec = tpch::tpch_workload();
    let w = Workload::bind(&db, &spec.statements).unwrap();
    let opt = Optimizer::new(&db);
    let (full, _) = gather_optimal_configuration(&db, &w, true);
    let base = Configuration::base(&db);

    // Q5: the 6-table join — the heaviest optimization in the workload.
    let q5 = w.entries[4].select.as_ref().unwrap();
    c.bench_function("optimize_q5_base_config", |b| {
        b.iter(|| opt.optimize(std::hint::black_box(&base), q5))
    });
    c.bench_function("optimize_q5_rich_config", |b| {
        b.iter(|| opt.optimize(std::hint::black_box(&full), q5))
    });
    c.bench_function("evaluate_workload_22q", |b| {
        b.iter(|| evaluate_full(&db, &opt, std::hint::black_box(&full), &w))
    });
}

fn bench_tuner_internals(c: &mut Criterion) {
    let db = tpch::tpch_database(0.1);
    let spec = tpch::tpch_workload();
    let w = Workload::bind(&db, &spec.statements).unwrap();
    let opt = Optimizer::new(&db);
    let base = Configuration::base(&db);
    let (full, _) = gather_optimal_configuration(&db, &w, true);
    let eval = evaluate_full(&db, &opt, &full, &w);

    c.bench_function("enumerate_transformations", |b| {
        b.iter(|| candidates(std::hint::black_box(&full), &base))
    });

    let cands = candidates(&full, &base);
    let removal = cands
        .iter()
        .find(|t| matches!(t, Transformation::RemoveIndex { .. }))
        .unwrap()
        .clone();
    c.bench_function("apply_transformation", |b| {
        b.iter_batched(
            || removal.clone(),
            |t| apply(&t, &full, &db, &opt),
            BatchSize::SmallInput,
        )
    });

    let applied = apply(&removal, &full, &db, &opt).unwrap();
    c.bench_function("cost_upper_bound_22q", |b| {
        let mut vc = ViewBuildCosts::new();
        b.iter(|| {
            cost_upper_bound(
                &db,
                &opt.opts.cost,
                &w,
                std::hint::black_box(&eval),
                &full,
                &applied,
                &mut vc,
            )
        })
    });

    c.bench_function("gather_optimal_configuration_22q", |b| {
        b.iter(|| gather_optimal_configuration(&db, &w, true))
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_estimation,
    bench_optimizer,
    bench_tuner_internals
);
criterion_main!(benches);
