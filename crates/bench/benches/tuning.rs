//! End-to-end tuning-session benchmarks: relaxation (PTT) and
//! bottom-up (CTT) sessions, plus the §3.5 variation ablations
//! (shortcut evaluation on/off, skyline on/off) measured on wall time.
//! The *quality* side of the ablations is reported by the
//! `exp_ablation` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use pdt_baseline::{BaselineAdvisor, BaselineOptions};
use pdt_tuner::{tune, TunerOptions, Workload};
use pdt_workloads::{tpch, updates::with_updates};

fn bench_sessions(c: &mut Criterion) {
    let db = tpch::tpch_database(0.05);
    let spec = tpch::tpch_workload_variant(1, 10);
    let w = Workload::bind(&db, &spec.statements).unwrap();
    let free = tune(&db, &w, &TunerOptions::default());
    let budget = free.initial_size + (free.optimal_size - free.initial_size) * 0.3;

    let mut g = c.benchmark_group("sessions");
    g.sample_size(10);

    g.bench_function("ptt_unconstrained", |b| {
        b.iter(|| tune(&db, &w, &TunerOptions::default()))
    });
    g.bench_function("ptt_constrained_30pct", |b| {
        b.iter(|| {
            tune(
                &db,
                &w,
                &TunerOptions {
                    space_budget: Some(budget),
                    max_iterations: 150,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("ctt_unconstrained", |b| {
        b.iter(|| BaselineAdvisor::new(&db, BaselineOptions::default()).tune(&w))
    });
    g.finish();
}

fn bench_variations(c: &mut Criterion) {
    let db = tpch::tpch_database(0.05);
    let base = tpch::tpch_workload_variant(2, 8);
    let mixed = with_updates(&db, &base, 0.5, 2);
    let w = Workload::bind(&db, &mixed.statements).unwrap();

    let mut g = c.benchmark_group("variations");
    g.sample_size(10);
    for (name, shortcut, skyline, shrink) in [
        ("all_on", true, true, false),
        ("no_shortcut", false, true, false),
        ("no_skyline", true, false, false),
        ("with_shrink", true, true, true),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                tune(
                    &db,
                    &w,
                    &TunerOptions {
                        space_budget: Some(f64::MAX),
                        max_iterations: 120,
                        shortcut_evaluation: shortcut,
                        skyline_filter: skyline,
                        shrink_unused: shrink,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sessions, bench_variations);
criterion_main!(benches);
