//! `pdtune` — command-line physical design tuning.
//!
//! ```text
//! pdtune tune    --db tpch --sf 0.1 --budget 256MB [--workload FILE] [--indexes-only]
//! pdtune explain --db tpch --sf 0.1 --sql "SELECT ..." [--optimal]
//! pdtune compare --db ds1 --seed 3 --queries 12
//! pdtune corpus
//! ```

use pdtune::baseline::{BaselineAdvisor, BaselineOptions};
use pdtune::catalog::Database;
use pdtune::expr::Binder;
use pdtune::prelude::*;
use pdtune::tuner::instrument::gather_optimal_configuration;
use pdtune::tuner::StopReason;
use pdtune::workloads::bench::{bench_database, bench_workload, BenchParams};
use pdtune::workloads::star::{star_database, star_workload, StarParams};
use pdtune::workloads::{tpch, WorkloadSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, TuneError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), TuneError> {
    let Some(command) = args.first().map(String::as_str) else {
        return Err(TuneError::Usage("missing command".to_string()));
    };
    if command == "job" {
        // `pdtune job <action> [flags]` — the action comes before the
        // flag list.
        let Some(action) = args.get(1).map(String::as_str) else {
            return Err(TuneError::Usage(
                "job needs an action (submit|status|wait|watch|cancel|list|stats|ping|shutdown)"
                    .to_string(),
            ));
        };
        let opts = CliOptions::parse(&args[2..])?;
        return cmd_job(action, &opts);
    }
    let opts = CliOptions::parse(&args[1..])?;
    match command {
        "tune" => cmd_tune(&opts),
        "serve" => cmd_serve(&opts),
        "explain" => cmd_explain(&opts),
        "compare" => cmd_compare(&opts),
        "corpus" => cmd_corpus(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(TuneError::Usage(format!("unknown command `{other}`"))),
    }
}

const USAGE: &str = "\
pdtune — relaxation-based automatic physical database tuning
(Bruno & Chaudhuri, SIGMOD 2005)

USAGE:
  pdtune tune    [options]      run a tuning session and print the recommendation
  pdtune serve   [options]      run the crash-safe tuning daemon (see SERVE MODE)
  pdtune job <action> [options] talk to a running daemon (see SERVE MODE)
  pdtune explain [options]      show a query's plan (optionally under the optimal config)
  pdtune compare [options]      relaxation (PTT) vs bottom-up (CTT) on one workload
  pdtune corpus                 list the built-in benchmark databases

OPTIONS:
  --db <tpch|ds1|ds2|bench>     benchmark database            [default: tpch]
  --sf <float>                  TPC-H scale factor            [default: 0.1]
  --budget <bytes|K|M|G>        storage budget, e.g. 256M     [default: none]
  --workload <file.sql>         semicolon-separated SQL file  [default: built-in]
  --queries <n>                 built-in workload size        [default: all]
  --seed <n>                    workload generator seed       [default: 0]
  --iterations <n>              relaxation iteration budget   [default: 300]
  --indexes-only                do not recommend materialized views
  --updates <ratio>             mix in DML statements (e.g. 0.5)
  --threads <n>                 worker threads, 0 = all cores  [default: $PDTUNE_THREADS or 1]
  --no-cache                    disable the shared what-if cost cache
  --no-incremental              disable the incremental candidate engine
                                (delta enumeration + bound memo); output
                                is byte-identical either way
  --no-derived-costs            disable derived what-if costing (relevant-
                                structure cache keys + plan reuse); output
                                is byte-identical either way
  --no-flat-hot-path            disable the flat id-addressed hot path
                                (interned sigs + dense-id memo/cache
                                probes); output is byte-identical either way
  --optimizer-call-budget <n>   approximate tier: spend at most n real
                                what-if invocations, serving bound-gap
                                midpoint estimates elsewhere; exhausting
                                the budget reports best-so-far (exit 0,
                                like --deadline)  [default: unlimited]
  --trace <file.jsonl>          write structured search telemetry as JSONL
  --validate-bounds             re-optimize after each step and check the
                                \u{a7}3.3.2 cost upper bound (fails on violation)
  --deadline <ms>               anytime stop: report best-so-far after this
                                many milliseconds (exit 0)
  --checkpoint <file>           write a resumable checkpoint on the cadence
                                below and when the session stops early
  --checkpoint-every <n>        checkpoint cadence in completed iterations
                                [default: 10]
  --resume <file>               resume a prior session from its checkpoint;
                                the resumed report/trace are byte-identical
                                to an uninterrupted run
  --max-faults <n>              abort (exit 6) after more than n contained
                                faults                         [default: 16]
  --sql <text>                  query text (explain)
  --optimal                     explain under the optimal configuration

SERVE MODE:
  pdtune serve --data-dir DIR [--addr 127.0.0.1:0] [--slots 2]
               [--queue-cap 16] [--global-call-budget N]
               [--retry-after-ms 250]
      Long-lived daemon accepting tuning jobs as line-delimited JSON on
      a local TCP socket (actual address published in DIR/endpoint).
      Sessions checkpoint durably and survive kill -9: restarting the
      daemon on the same --data-dir resumes every registered session
      and produces byte-identical reports and traces. SIGTERM drains
      live sessions to a final checkpoint and exits 0.

  pdtune job submit [tune options] [--data-dir DIR | --addr HOST:PORT]
                    [--wait] [--faults s:r] [--io-faults s:r]
  pdtune job status|wait|watch|cancel --id sNNNN [--data-dir DIR]
  pdtune job list|stats|ping|shutdown [--data-dir DIR]
      Submit prints the assigned session id; --wait blocks until the
      session is terminal and maps its outcome to the exit codes below.
      An overloaded daemon answers {\"error\":\"overloaded\",
      \"retry_after_ms\":N}; the client honors the hint and retries.

ENVIRONMENT:
  PDTUNE_THREADS                default worker threads (0 = all cores)
  PDTUNE_FAULTS=<seed>:<rate>   deterministic fault injection (testing);
                                in serve mode this drives manifest-write
                                faults (checkpoint-write faults come from
                                each job's io_faults spec field)

EXIT CODES:
  0  success (including a deadline stop: anytime runs report best-so-far)
  2  usage error            6  fault limit exceeded
  3  I/O error              7  bound oracle violation
  4  workload error         8  serve: cannot bind socket
  5  checkpoint error       9  serve: corrupt job manifest
  10 serve: recovery mismatch (resumed checkpoint does not replay)
  130  interrupted (SIGINT; a final checkpoint is written first)
";

#[derive(Debug, Default)]
struct CliOptions {
    db: String,
    sf: f64,
    budget: Option<f64>,
    workload_file: Option<String>,
    queries: Option<usize>,
    seed: u64,
    iterations: usize,
    indexes_only: bool,
    updates: Option<f64>,
    threads: usize,
    no_cache: bool,
    no_incremental: bool,
    no_derived_costs: bool,
    no_flat_hot_path: bool,
    optimizer_call_budget: Option<usize>,
    trace: Option<String>,
    validate_bounds: bool,
    deadline: Option<u64>,
    checkpoint: Option<String>,
    checkpoint_every: usize,
    resume: Option<String>,
    max_faults: Option<usize>,
    sql: Option<String>,
    optimal: bool,
    // serve/job options
    addr: Option<String>,
    data_dir: Option<String>,
    slots: usize,
    queue_cap: usize,
    global_call_budget: Option<usize>,
    retry_after_ms: u64,
    id: Option<String>,
    wait: bool,
    faults: Option<String>,
    io_faults: Option<String>,
}

impl CliOptions {
    fn parse(args: &[String]) -> Result<CliOptions, TuneError> {
        let mut o = CliOptions {
            db: "tpch".to_string(),
            sf: 0.1,
            iterations: 300,
            threads: default_threads(),
            checkpoint_every: 10,
            slots: 2,
            queue_cap: 16,
            retry_after_ms: 250,
            ..Default::default()
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| TuneError::Usage(format!("{name} needs a value")))
            };
            let usage =
                |name: &str, e: &dyn std::fmt::Display| TuneError::Usage(format!("{name}: {e}"));
            match flag.as_str() {
                "--db" => o.db = value("--db")?,
                "--sf" => o.sf = value("--sf")?.parse().map_err(|e| usage("--sf", &e))?,
                "--budget" => {
                    o.budget = Some(parse_bytes(&value("--budget")?).map_err(TuneError::Usage)?)
                }
                "--workload" => o.workload_file = Some(value("--workload")?),
                "--queries" => {
                    o.queries = Some(
                        value("--queries")?
                            .parse()
                            .map_err(|e| usage("--queries", &e))?,
                    )
                }
                "--seed" => o.seed = value("--seed")?.parse().map_err(|e| usage("--seed", &e))?,
                "--iterations" => {
                    o.iterations = value("--iterations")?
                        .parse()
                        .map_err(|e| usage("--iterations", &e))?
                }
                "--indexes-only" => o.indexes_only = true,
                "--updates" => {
                    o.updates = Some(
                        value("--updates")?
                            .parse()
                            .map_err(|e| usage("--updates", &e))?,
                    )
                }
                "--threads" => {
                    o.threads = value("--threads")?
                        .parse()
                        .map_err(|e| usage("--threads", &e))?
                }
                "--no-cache" => o.no_cache = true,
                "--no-incremental" => o.no_incremental = true,
                "--no-derived-costs" => o.no_derived_costs = true,
                "--no-flat-hot-path" => o.no_flat_hot_path = true,
                "--optimizer-call-budget" => {
                    o.optimizer_call_budget = Some(
                        value("--optimizer-call-budget")?
                            .parse()
                            .map_err(|e| usage("--optimizer-call-budget", &e))?,
                    )
                }
                "--trace" => o.trace = Some(value("--trace")?),
                "--validate-bounds" => o.validate_bounds = true,
                "--deadline" => {
                    o.deadline = Some(
                        value("--deadline")?
                            .parse()
                            .map_err(|e| usage("--deadline", &e))?,
                    )
                }
                "--checkpoint" => o.checkpoint = Some(value("--checkpoint")?),
                "--checkpoint-every" => {
                    o.checkpoint_every = value("--checkpoint-every")?
                        .parse()
                        .map_err(|e| usage("--checkpoint-every", &e))?;
                    if o.checkpoint_every == 0 {
                        return Err(TuneError::Usage(
                            "--checkpoint-every must be at least 1".to_string(),
                        ));
                    }
                }
                "--resume" => o.resume = Some(value("--resume")?),
                "--max-faults" => {
                    o.max_faults = Some(
                        value("--max-faults")?
                            .parse()
                            .map_err(|e| usage("--max-faults", &e))?,
                    )
                }
                "--sql" => o.sql = Some(value("--sql")?),
                "--optimal" => o.optimal = true,
                "--addr" => o.addr = Some(value("--addr")?),
                "--data-dir" => o.data_dir = Some(value("--data-dir")?),
                "--slots" => {
                    o.slots = value("--slots")?
                        .parse()
                        .map_err(|e| usage("--slots", &e))?;
                    if o.slots == 0 {
                        return Err(TuneError::Usage("--slots must be at least 1".to_string()));
                    }
                }
                "--queue-cap" => {
                    o.queue_cap = value("--queue-cap")?
                        .parse()
                        .map_err(|e| usage("--queue-cap", &e))?
                }
                "--global-call-budget" => {
                    o.global_call_budget = Some(
                        value("--global-call-budget")?
                            .parse()
                            .map_err(|e| usage("--global-call-budget", &e))?,
                    )
                }
                "--retry-after-ms" => {
                    o.retry_after_ms = value("--retry-after-ms")?
                        .parse()
                        .map_err(|e| usage("--retry-after-ms", &e))?
                }
                "--id" => o.id = Some(value("--id")?),
                "--wait" => o.wait = true,
                "--faults" => o.faults = Some(value("--faults")?),
                "--io-faults" => o.io_faults = Some(value("--io-faults")?),
                other => return Err(TuneError::Usage(format!("unknown flag `{other}`"))),
            }
        }
        Ok(o)
    }
}

/// `--threads` default: the `PDTUNE_THREADS` environment variable when
/// set (0 = all cores), else 1.
fn default_threads() -> usize {
    std::env::var("PDTUNE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Parse a byte size such as `256M` or `1.5G`. A budget must be a
/// positive, finite number of bytes — `NaN`, infinities, zero, and
/// negative sizes are rejected (a NaN budget silently disables every
/// space check, which is never what the user meant).
fn parse_bytes(s: &str) -> Result<f64, String> {
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1e3),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1e6),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1e9),
        _ => (s, 1.0),
    };
    let v = num
        .parse::<f64>()
        .map_err(|e| format!("bad byte size `{s}`: {e}"))?
        * mult;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!(
            "bad byte size `{s}`: budget must be a positive finite number of bytes"
        ));
    }
    Ok(v)
}

fn read_file(path: &str) -> Result<String, TuneError> {
    std::fs::read_to_string(path).map_err(|e| TuneError::Io {
        path: path.to_string(),
        msg: e.to_string(),
    })
}

fn write_file(path: &str, contents: &str) -> Result<(), TuneError> {
    std::fs::write(path, contents).map_err(|e| TuneError::Io {
        path: path.to_string(),
        msg: e.to_string(),
    })
}

fn load_database(o: &CliOptions) -> Result<Database, TuneError> {
    match o.db.as_str() {
        "tpch" => Ok(tpch::tpch_database(o.sf)),
        "ds1" => Ok(star_database(&StarParams::ds1())),
        "ds2" => Ok(star_database(&StarParams::ds2())),
        "bench" => Ok(bench_database(&BenchParams::default())),
        other => Err(TuneError::Usage(format!(
            "unknown database `{other}` (try tpch|ds1|ds2|bench)"
        ))),
    }
}

fn load_workload(o: &CliOptions, db: &Database) -> Result<WorkloadSpec, TuneError> {
    let mut spec = if let Some(path) = &o.workload_file {
        let text = read_file(path)?;
        let statements = pdtune::sql::parse_workload(&text)
            .map_err(|e| TuneError::Workload(format!("{path}: {e}")))?;
        WorkloadSpec::new(path.clone(), statements)
    } else {
        match o.db.as_str() {
            "tpch" => match o.queries {
                Some(n) => tpch::tpch_workload_variant(o.seed, n),
                None => tpch::tpch_workload(),
            },
            "ds1" => star_workload(&StarParams::ds1(), o.seed, o.queries.unwrap_or(12)),
            "ds2" => star_workload(&StarParams::ds2(), o.seed, o.queries.unwrap_or(12)),
            _ => bench_workload(db, o.seed, o.queries.unwrap_or(15)),
        }
    };
    if let Some(ratio) = o.updates {
        spec = pdtune::workloads::updates::with_updates(db, &spec, ratio, o.seed);
    }
    Ok(spec)
}

fn bind_workload(db: &Database, spec: &WorkloadSpec) -> Result<Workload, TuneError> {
    Workload::bind(db, &spec.statements)
        .map_err(|e| TuneError::Workload(format!("binding workload: {e}")))
}

/// Suppress the default "thread panicked" stderr noise for panics the
/// fault injector fires on purpose; everything else still reaches the
/// previous hook.
fn quiet_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.starts_with("injected fault:"));
        if !injected {
            prev(info);
        }
    }));
}

fn cmd_tune(o: &CliOptions) -> Result<(), TuneError> {
    let db = load_database(o)?;
    let spec = load_workload(o, &db)?;
    let workload = bind_workload(&db, &spec)?;

    let fault_plan = FaultPlan::from_env().map_err(TuneError::Usage)?;
    if fault_plan.is_some() {
        quiet_injected_panics();
    }

    let resumed = match &o.resume {
        Some(path) => Some(Checkpoint::from_json_str(&read_file(path)?)?),
        None => None,
    };

    // Ctrl-C trips the token; the search notices at the next stop
    // check, writes a final checkpoint, and returns a complete
    // best-so-far report before the process exits with code 130.
    let token = StopToken::default();
    #[cfg(unix)]
    pdtune::tuner::install_sigint(&token);

    let options = TunerOptions {
        space_budget: o.budget,
        max_iterations: o.iterations,
        with_views: !o.indexes_only,
        threads: o.threads,
        cost_cache: !o.no_cache,
        incremental: !o.no_incremental,
        derived_costs: !o.no_derived_costs,
        flat_hot_path: !o.no_flat_hot_path,
        optimizer_call_budget: o.optimizer_call_budget,
        validate_bounds: o.validate_bounds,
        deadline_ms: o.deadline,
        stop: Some(token.clone()),
        fault_plan,
        max_faults: o
            .max_faults
            .unwrap_or_else(|| TunerOptions::default().max_faults),
        ..TunerOptions::default()
    };

    println!(
        "tuning `{}` over {} statements ({} updates)...",
        db.name,
        workload.len(),
        spec.update_count()
    );
    if let (Some(path), Some(ck)) = (&o.resume, &resumed) {
        println!(
            "resuming from {path} ({} completed iterations)",
            ck.iteration
        );
    }

    let tracer = (o.trace.is_some() || o.validate_bounds).then(pdtune::trace::Tracer::new);
    // Checkpoints land crash-safely: tmp + fsync(file) + rename +
    // fsync(dir), so neither process death nor a host crash can leave
    // a torn or unreachable checkpoint.
    let sink = o.checkpoint.clone().map(|path| {
        move |done: usize, body: &str| match pdtune::serve::atomic_write(
            std::path::Path::new(&path),
            body.as_bytes(),
        ) {
            Ok(()) => eprintln!("checkpoint: {done} iterations -> {path}"),
            Err(e) => eprintln!("warning: checkpoint write to {path} failed: {e}"),
        }
    });
    let report = pdtune::tuner::tune_session(
        &db,
        &workload,
        &options,
        SessionCtl {
            tracer: tracer.as_ref(),
            checkpoint_every: o.checkpoint_every,
            checkpoint_sink: sink.as_ref().map(|s| s as &dyn Fn(usize, &str)),
            resume: resumed.as_ref(),
        },
    )?;

    println!(
        "\ninitial  cost {:>12.0}   ({:.1} MB)",
        report.initial_cost,
        report.initial_size / 1e6
    );
    println!(
        "optimal  cost {:>12.0}   ({:.1} MB, {:+.1}%)",
        report.optimal_cost,
        report.optimal_size / 1e6,
        report.optimal_improvement_pct()
    );
    match &report.best {
        Some(best) => {
            println!(
                "best     cost {:>12.0}   ({:.1} MB, {:+.1}%)\n",
                best.cost,
                best.size_bytes / 1e6,
                report.best_improvement_pct()
            );
            println!("recommended physical design:");
            for index in best.config.indexes() {
                if index.table.is_view() {
                    continue;
                }
                let t = db.table(index.table);
                let cols: Vec<&str> = index
                    .key
                    .iter()
                    .map(|c| t.column(c.ordinal).name.as_str())
                    .collect();
                let suffix: Vec<&str> = index
                    .suffix
                    .iter()
                    .map(|c| t.column(c.ordinal).name.as_str())
                    .collect();
                let kind = if index.clustered { "CLUSTERED " } else { "" };
                if suffix.is_empty() {
                    println!("  CREATE {kind}INDEX ON {} ({})", t.name, cols.join(", "));
                } else {
                    println!(
                        "  CREATE {kind}INDEX ON {} ({}) INCLUDE ({})",
                        t.name,
                        cols.join(", "),
                        suffix.join(", ")
                    );
                }
            }
            for view in best.config.views() {
                println!("  CREATE MATERIALIZED VIEW AS {}", view.def.to_sql(&db));
            }
        }
        None => println!("no configuration fits the budget"),
    }
    println!(
        "\n{} iterations ({}), {} optimizer calls, {:?}",
        report.iterations,
        report.stop_reason.label(),
        report.optimizer_calls,
        report.elapsed
    );
    println!(
        "{}",
        cache_line(report.cache_hits, report.cache_misses, o.no_cache)
    );
    if report.workload_deduped > 0 {
        println!(
            "workload: {} duplicate statements folded into weighted entries",
            report.workload_deduped
        );
    }
    if let Some(remaining) = report.budget_remaining {
        println!(
            "call budget: {} estimates served, {} budget remaining",
            report.optimizer_calls_skipped, remaining
        );
    }
    if report.optimizer_calls_avoided > 0 {
        println!(
            "derived costing: {} optimizer calls avoided beyond coarse keying",
            report.optimizer_calls_avoided
        );
    }
    let plan_probes = report.plan_cache_hits + report.plan_cache_misses;
    if plan_probes > 0 {
        println!(
            "plan cache: {} reused / {} probes missed, {} repriced",
            report.plan_cache_hits, report.plan_cache_misses, report.plan_cache_repriced
        );
    }
    let scored = report.candidates_generated + report.candidates_reused;
    if scored > 0 {
        println!(
            "scoring: {} candidates generated, {} reused ({:.1}x amplification)",
            report.candidates_generated,
            report.candidates_reused,
            scored as f64 / report.candidates_generated.max(1) as f64
        );
    }
    let memo_probes = report.bound_memo_hits + report.bound_memo_misses;
    if memo_probes > 0 {
        println!(
            "bound memo: {} hits / {} misses ({:.1}% hit rate)",
            report.bound_memo_hits,
            report.bound_memo_misses,
            100.0 * report.bound_memo_hits as f64 / memo_probes as f64
        );
    }
    if !report.faults.is_empty() {
        println!("faults contained: {}", report.faults.len());
        for f in &report.faults {
            println!(
                "  iteration {:>3}  {:<12} {}",
                f.iteration,
                f.kind.label(),
                f.detail
            );
        }
    }
    if let (Some(path), Some(tracer)) = (&o.trace, tracer.as_ref()) {
        write_file(path, &tracer.to_jsonl())?;
        println!("trace: {} events -> {path}", tracer.len());
    }
    if o.validate_bounds {
        println!(
            "bound oracle: {} checks, {} violations",
            report.bound_checks,
            report.bound_violations.len()
        );
        if let Some(v) = report.bound_violations.first() {
            return Err(TuneError::BoundViolation {
                iteration: v.iteration,
                transformation: v.transformation.clone(),
                bound: v.bound,
                actual: v.actual,
            });
        }
    }
    match report.stop_reason {
        // A deadline or call-budget stop is a successful anytime run:
        // best-so-far was reported above, exit 0.
        StopReason::Converged
        | StopReason::IterationBudget
        | StopReason::Deadline
        | StopReason::CallBudget => Ok(()),
        StopReason::Interrupted => Err(TuneError::Interrupted),
        StopReason::FaultLimit => Err(TuneError::FaultLimit {
            faults: report.faults.len(),
        }),
    }
}

/// Render the cost-cache counter line of a report.
fn cache_line(hits: u64, misses: u64, disabled: bool) -> String {
    if disabled {
        return "cost cache disabled".to_string();
    }
    let total = hits + misses;
    let rate = if total == 0 {
        0.0
    } else {
        100.0 * hits as f64 / total as f64
    };
    format!("cost cache: {hits} hits / {misses} misses ({rate:.1}% hit rate)")
}

fn cmd_serve(o: &CliOptions) -> Result<(), TuneError> {
    let opts = pdtune::serve::ServeOptions {
        addr: o.addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_string()),
        data_dir: std::path::PathBuf::from(
            o.data_dir
                .clone()
                .unwrap_or_else(|| "pdtune-serve".to_string()),
        ),
        slots: o.slots,
        queue_cap: o.queue_cap,
        global_call_budget: o.global_call_budget,
        retry_after_ms: o.retry_after_ms,
        manifest_faults: FaultPlan::from_env().map_err(TuneError::Usage)?,
    };
    // SIGTERM and Ctrl-C both request a graceful drain: stop
    // accepting, checkpoint live sessions, exit 0. kill -9 is the
    // crash case the durable manifests recover from.
    let shutdown = StopToken::default();
    #[cfg(unix)]
    {
        pdtune::tuner::install_sigint(&shutdown);
        pdtune::tuner::install_sigterm(&shutdown);
    }
    pdtune::serve::serve(opts, shutdown)
}

/// Build the serve-mode job spec from the shared CLI flags.
fn job_spec(o: &CliOptions) -> pdtune::serve::JobSpec {
    pdtune::serve::JobSpec {
        db: o.db.clone(),
        sf: o.sf,
        queries: o.queries,
        seed: o.seed,
        budget: o.budget,
        iterations: o.iterations,
        updates: o.updates,
        indexes_only: o.indexes_only,
        threads: o.threads,
        checkpoint_every: o.checkpoint_every,
        call_budget: o.optimizer_call_budget,
        max_faults: o.max_faults,
        faults: o.faults.clone(),
        io_faults: o.io_faults.clone(),
    }
}

/// Map a terminal serve-mode session outcome to the process exit
/// policy (same classes as single-shot `tune`).
fn job_exit(state: &str, error: Option<String>) -> Result<(), TuneError> {
    match state {
        "done" => Ok(()),
        "canceled" => Err(TuneError::Interrupted),
        _ => {
            let msg = error.unwrap_or_else(|| "session failed".to_string());
            if let Some(detail) = msg.strip_prefix("recovery mismatch: ") {
                Err(TuneError::RecoveryMismatch(detail.to_string()))
            } else if msg.contains("contained faults") {
                let faults = msg
                    .split_whitespace()
                    .find_map(|w| w.parse::<usize>().ok())
                    .unwrap_or(0);
                Err(TuneError::FaultLimit { faults })
            } else if let Some(detail) = msg.strip_prefix("workload error: ") {
                Err(TuneError::Workload(detail.to_string()))
            } else {
                Err(TuneError::Io {
                    path: "session".to_string(),
                    msg,
                })
            }
        }
    }
}

fn cmd_job(action: &str, o: &CliOptions) -> Result<(), TuneError> {
    use pdtune::serve::Client;
    use pdtune::trace::json::Json;

    let addr = match (&o.addr, &o.data_dir) {
        (Some(a), _) => a.clone(),
        (None, Some(dir)) => {
            Client::discover(std::path::Path::new(dir)).map_err(|e| TuneError::Io {
                path: dir.clone(),
                msg: e,
            })?
        }
        (None, None) => {
            return Err(TuneError::Usage(
                "job needs --addr or --data-dir to find the daemon".to_string(),
            ))
        }
    };
    let client = Client::new(&addr);
    let need_id = || {
        o.id.clone()
            .ok_or_else(|| TuneError::Usage(format!("job {action} needs --id")))
    };
    let simple = |op: &str, id: Option<&str>| {
        let mut fields = vec![("op".to_string(), Json::Str(op.to_string()))];
        if let Some(id) = id {
            fields.push(("id".to_string(), Json::Str(id.to_string())));
        }
        Json::Obj(fields).to_string()
    };
    let call_err = |e: String| TuneError::Io {
        path: addr.clone(),
        msg: e,
    };

    match action {
        "submit" => {
            let spec = job_spec(o);
            spec.validate().map_err(TuneError::Usage)?;
            let id = client.submit(&spec.to_json()).map_err(call_err)?;
            println!("{id}");
            if o.wait {
                let (state, error) = client
                    .wait(&id, std::time::Duration::from_millis(100))
                    .map_err(call_err)?;
                eprintln!("session {id}: {state}");
                return job_exit(&state, error);
            }
            Ok(())
        }
        "status" => {
            let doc = client
                .call(&simple("status", Some(&need_id()?)))
                .map_err(call_err)?;
            println!("{doc}");
            Ok(())
        }
        "wait" => {
            let id = need_id()?;
            let (state, error) = client
                .wait(&id, std::time::Duration::from_millis(100))
                .map_err(call_err)?;
            println!("{state}");
            job_exit(&state, error)
        }
        "watch" => {
            let id = need_id()?;
            let (done, state) = client
                .watch(&id, 0, |line| println!("{line}"))
                .map_err(call_err)?;
            eprintln!(
                "session {id}: {state}{}",
                if done { "" } else { " (daemon shutting down)" }
            );
            Ok(())
        }
        "cancel" => {
            let doc = client
                .call(&simple("cancel", Some(&need_id()?)))
                .map_err(call_err)?;
            println!("{doc}");
            Ok(())
        }
        "list" | "stats" | "ping" | "shutdown" => {
            let doc = client.call(&simple(action, None)).map_err(call_err)?;
            println!("{doc}");
            Ok(())
        }
        other => Err(TuneError::Usage(format!("unknown job action `{other}`"))),
    }
}

fn cmd_explain(o: &CliOptions) -> Result<(), TuneError> {
    let db = load_database(o)?;
    let sql = o
        .sql
        .as_deref()
        .ok_or_else(|| TuneError::Usage("explain needs --sql".to_string()))?;
    let stmt = parse_statement(sql).map_err(|e| TuneError::Workload(e.to_string()))?;
    let bound = Binder::new(&db)
        .bind(&stmt)
        .map_err(|e| TuneError::Workload(e.to_string()))?;
    let query = bound
        .as_select()
        .ok_or_else(|| TuneError::Workload("explain supports SELECT only".to_string()))?;
    let optimizer = Optimizer::new(&db);

    let config = if o.optimal {
        let w = Workload::bind(&db, std::slice::from_ref(&stmt))
            .map_err(|e| TuneError::Workload(e.to_string()))?;
        let (c, _) = gather_optimal_configuration(&db, &w, !o.indexes_only);
        c
    } else {
        Configuration::base(&db)
    };
    let plan = optimizer.optimize(&config, query);
    println!(
        "cost {:.1}, rows {:.0}\n{}",
        plan.cost,
        plan.rows,
        plan.explain()
    );
    Ok(())
}

fn cmd_compare(o: &CliOptions) -> Result<(), TuneError> {
    let db = load_database(o)?;
    let spec = load_workload(o, &db)?;
    let workload = bind_workload(&db, &spec)?;
    let ptt = tune(
        &db,
        &workload,
        &TunerOptions {
            space_budget: o.budget,
            max_iterations: o.iterations,
            with_views: !o.indexes_only,
            threads: o.threads,
            cost_cache: !o.no_cache,
            ..TunerOptions::default()
        },
    );
    let ctt = BaselineAdvisor::new(
        &db,
        BaselineOptions {
            space_budget: o.budget,
            with_views: !o.indexes_only,
            threads: o.threads,
            cost_cache: !o.no_cache,
            ..BaselineOptions::default()
        },
    )
    .tune(&workload);
    println!("workload `{}` ({} statements)", spec.name, workload.len());
    println!(
        "PTT (relaxation): {:+.1}% improvement, {} optimizer calls, {:?}",
        ptt.best_improvement_pct(),
        ptt.optimizer_calls,
        ptt.elapsed
    );
    println!(
        "    {}",
        cache_line(ptt.cache_hits, ptt.cache_misses, o.no_cache)
    );
    println!(
        "CTT (bottom-up) : {:+.1}% improvement, {} optimizer calls, {:?}",
        ctt.improvement_pct(),
        ctt.optimizer_calls,
        ctt.elapsed
    );
    println!(
        "    {}",
        cache_line(ctt.cache_hits, ctt.cache_misses, o.no_cache)
    );
    println!(
        "dImprovement = {:+.1} points",
        ptt.best_improvement_pct() - ctt.improvement_pct()
    );
    Ok(())
}

fn cmd_corpus() -> Result<(), TuneError> {
    println!("built-in benchmark databases:\n");
    for (name, db) in [
        ("tpch (SF 0.1)", tpch::tpch_database(0.1)),
        ("ds1", star_database(&StarParams::ds1())),
        ("ds2", star_database(&StarParams::ds2())),
        ("bench", bench_database(&BenchParams::default())),
    ] {
        println!(
            "  {name:<14} {:>2} tables, {:>8.2} GB",
            db.tables().len(),
            db.total_heap_bytes() / 1e9
        );
        for t in db.tables() {
            println!(
                "      {:<12} {:>12.0} rows x {:>3} cols",
                t.name,
                t.rows,
                t.columns.len()
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_accepts_positive_sizes() {
        assert_eq!(parse_bytes("1024"), Ok(1024.0));
        assert_eq!(parse_bytes("256M"), Ok(256e6));
        assert_eq!(parse_bytes("64k"), Ok(64e3));
        assert_eq!(parse_bytes("1.5G"), Ok(1.5e9));
    }

    #[test]
    fn parse_bytes_rejects_non_positive_and_non_finite() {
        for bad in ["NaN", "nan", "inf", "-inf", "infG", "0", "0M", "-5G", "-1"] {
            assert!(parse_bytes(bad).is_err(), "`{bad}` should be rejected");
        }
        assert!(parse_bytes("").is_err());
        assert!(parse_bytes("twelve").is_err());
    }

    #[test]
    fn cli_rejects_bad_budgets_with_usage_errors() {
        for bad in ["NaN", "-5G", "0"] {
            let args = vec!["--budget".to_string(), bad.to_string()];
            match CliOptions::parse(&args) {
                Err(TuneError::Usage(msg)) => assert!(msg.contains("byte size"), "{msg}"),
                other => panic!("`--budget {bad}` should be a usage error, got {other:?}"),
            }
        }
    }

    #[test]
    fn cli_parses_anytime_flags() {
        let args: Vec<String> = [
            "--deadline",
            "1500",
            "--checkpoint",
            "ck.json",
            "--checkpoint-every",
            "5",
            "--max-faults",
            "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = CliOptions::parse(&args).unwrap();
        assert_eq!(o.deadline, Some(1500));
        assert_eq!(o.checkpoint.as_deref(), Some("ck.json"));
        assert_eq!(o.checkpoint_every, 5);
        assert_eq!(o.max_faults, Some(3));
    }

    #[test]
    fn cli_parses_incremental_flag() {
        let o = CliOptions::parse(&[]).unwrap();
        assert!(!o.no_incremental, "incremental engine is the default");
        let args = vec!["--no-incremental".to_string()];
        let o = CliOptions::parse(&args).unwrap();
        assert!(o.no_incremental);
    }

    #[test]
    fn cli_parses_derived_costs_flag() {
        let o = CliOptions::parse(&[]).unwrap();
        assert!(!o.no_derived_costs, "derived costing is the default");
        let args = vec!["--no-derived-costs".to_string()];
        let o = CliOptions::parse(&args).unwrap();
        assert!(o.no_derived_costs);
    }

    #[test]
    fn cli_parses_flat_hot_path_flag() {
        let o = CliOptions::parse(&[]).unwrap();
        assert!(!o.no_flat_hot_path, "the flat hot path is the default");
        let args = vec!["--no-flat-hot-path".to_string()];
        let o = CliOptions::parse(&args).unwrap();
        assert!(o.no_flat_hot_path);
    }

    #[test]
    fn cli_parses_optimizer_call_budget() {
        let o = CliOptions::parse(&[]).unwrap();
        assert_eq!(o.optimizer_call_budget, None, "unlimited is the default");
        let args = vec!["--optimizer-call-budget".to_string(), "64".to_string()];
        let o = CliOptions::parse(&args).unwrap();
        assert_eq!(o.optimizer_call_budget, Some(64));
        let args = vec!["--optimizer-call-budget".to_string(), "lots".to_string()];
        assert!(matches!(CliOptions::parse(&args), Err(TuneError::Usage(_))));
    }

    #[test]
    fn cli_rejects_zero_checkpoint_cadence() {
        let args = vec!["--checkpoint-every".to_string(), "0".to_string()];
        assert!(matches!(CliOptions::parse(&args), Err(TuneError::Usage(_))));
    }
}
