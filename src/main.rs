//! `pdtune` — command-line physical design tuning.
//!
//! ```text
//! pdtune tune    --db tpch --sf 0.1 --budget 256MB [--workload FILE] [--indexes-only]
//! pdtune explain --db tpch --sf 0.1 --sql "SELECT ..." [--optimal]
//! pdtune compare --db ds1 --seed 3 --queries 12
//! pdtune corpus
//! ```

use pdtune::baseline::{BaselineAdvisor, BaselineOptions};
use pdtune::catalog::Database;
use pdtune::expr::Binder;
use pdtune::prelude::*;
use pdtune::tuner::instrument::gather_optimal_configuration;
use pdtune::workloads::bench::{bench_database, bench_workload, BenchParams};
use pdtune::workloads::star::{star_database, star_workload, StarParams};
use pdtune::workloads::{tpch, WorkloadSpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match CliOptions::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        "tune" => cmd_tune(&opts),
        "explain" => cmd_explain(&opts),
        "compare" => cmd_compare(&opts),
        "corpus" => cmd_corpus(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
pdtune — relaxation-based automatic physical database tuning
(Bruno & Chaudhuri, SIGMOD 2005)

USAGE:
  pdtune tune    [options]      run a tuning session and print the recommendation
  pdtune explain [options]      show a query's plan (optionally under the optimal config)
  pdtune compare [options]      relaxation (PTT) vs bottom-up (CTT) on one workload
  pdtune corpus                 list the built-in benchmark databases

OPTIONS:
  --db <tpch|ds1|ds2|bench>     benchmark database            [default: tpch]
  --sf <float>                  TPC-H scale factor            [default: 0.1]
  --budget <bytes|K|M|G>        storage budget, e.g. 256M     [default: none]
  --workload <file.sql>         semicolon-separated SQL file  [default: built-in]
  --queries <n>                 built-in workload size        [default: all]
  --seed <n>                    workload generator seed       [default: 0]
  --iterations <n>              relaxation iteration budget   [default: 300]
  --indexes-only                do not recommend materialized views
  --updates <ratio>             mix in DML statements (e.g. 0.5)
  --threads <n>                 worker threads, 0 = all cores  [default: $PDTUNE_THREADS or 1]
  --no-cache                    disable the shared what-if cost cache
  --trace <file.jsonl>          write structured search telemetry as JSONL
  --validate-bounds             re-optimize after each step and check the
                                \u{a7}3.3.2 cost upper bound (fails on violation)
  --sql <text>                  query text (explain)
  --optimal                     explain under the optimal configuration
";

#[derive(Default)]
struct CliOptions {
    db: String,
    sf: f64,
    budget: Option<f64>,
    workload_file: Option<String>,
    queries: Option<usize>,
    seed: u64,
    iterations: usize,
    indexes_only: bool,
    updates: Option<f64>,
    threads: usize,
    no_cache: bool,
    trace: Option<String>,
    validate_bounds: bool,
    sql: Option<String>,
    optimal: bool,
}

impl CliOptions {
    fn parse(args: &[String]) -> Result<CliOptions, String> {
        let mut o = CliOptions {
            db: "tpch".to_string(),
            sf: 0.1,
            iterations: 300,
            threads: default_threads(),
            ..Default::default()
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--db" => o.db = value("--db")?,
                "--sf" => o.sf = value("--sf")?.parse().map_err(|e| format!("--sf: {e}"))?,
                "--budget" => o.budget = Some(parse_bytes(&value("--budget")?)?),
                "--workload" => o.workload_file = Some(value("--workload")?),
                "--queries" => {
                    o.queries = Some(
                        value("--queries")?
                            .parse()
                            .map_err(|e| format!("--queries: {e}"))?,
                    )
                }
                "--seed" => {
                    o.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--iterations" => {
                    o.iterations = value("--iterations")?
                        .parse()
                        .map_err(|e| format!("--iterations: {e}"))?
                }
                "--indexes-only" => o.indexes_only = true,
                "--updates" => {
                    o.updates = Some(
                        value("--updates")?
                            .parse()
                            .map_err(|e| format!("--updates: {e}"))?,
                    )
                }
                "--threads" => {
                    o.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--no-cache" => o.no_cache = true,
                "--trace" => o.trace = Some(value("--trace")?),
                "--validate-bounds" => o.validate_bounds = true,
                "--sql" => o.sql = Some(value("--sql")?),
                "--optimal" => o.optimal = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(o)
    }
}

/// `--threads` default: the `PDTUNE_THREADS` environment variable when
/// set (0 = all cores), else 1.
fn default_threads() -> usize {
    std::env::var("PDTUNE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn parse_bytes(s: &str) -> Result<f64, String> {
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1e3),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1e6),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1e9),
        _ => (s, 1.0),
    };
    num.parse::<f64>()
        .map(|v| v * mult)
        .map_err(|e| format!("bad byte size `{s}`: {e}"))
}

fn load_database(o: &CliOptions) -> Result<Database, String> {
    match o.db.as_str() {
        "tpch" => Ok(tpch::tpch_database(o.sf)),
        "ds1" => Ok(star_database(&StarParams::ds1())),
        "ds2" => Ok(star_database(&StarParams::ds2())),
        "bench" => Ok(bench_database(&BenchParams::default())),
        other => Err(format!(
            "unknown database `{other}` (try tpch|ds1|ds2|bench)"
        )),
    }
}

fn load_workload(o: &CliOptions, db: &Database) -> Result<WorkloadSpec, String> {
    let mut spec = if let Some(path) = &o.workload_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let statements = pdtune::sql::parse_workload(&text).map_err(|e| format!("{path}: {e}"))?;
        WorkloadSpec::new(path.clone(), statements)
    } else {
        match o.db.as_str() {
            "tpch" => match o.queries {
                Some(n) => tpch::tpch_workload_variant(o.seed, n),
                None => tpch::tpch_workload(),
            },
            "ds1" => star_workload(&StarParams::ds1(), o.seed, o.queries.unwrap_or(12)),
            "ds2" => star_workload(&StarParams::ds2(), o.seed, o.queries.unwrap_or(12)),
            _ => bench_workload(db, o.seed, o.queries.unwrap_or(15)),
        }
    };
    if let Some(ratio) = o.updates {
        spec = pdtune::workloads::updates::with_updates(db, &spec, ratio, o.seed);
    }
    Ok(spec)
}

fn cmd_tune(o: &CliOptions) -> Result<(), String> {
    let db = load_database(o)?;
    let spec = load_workload(o, &db)?;
    let workload =
        Workload::bind(&db, &spec.statements).map_err(|e| format!("binding workload: {e}"))?;
    println!(
        "tuning `{}` over {} statements ({} updates)...",
        db.name,
        workload.len(),
        spec.update_count()
    );
    let tracer = (o.trace.is_some() || o.validate_bounds).then(pdtune::trace::Tracer::new);
    let report = pdtune::tuner::tune_traced(
        &db,
        &workload,
        &TunerOptions {
            space_budget: o.budget,
            max_iterations: o.iterations,
            with_views: !o.indexes_only,
            threads: o.threads,
            cost_cache: !o.no_cache,
            validate_bounds: o.validate_bounds,
            ..TunerOptions::default()
        },
        tracer.as_ref(),
    );
    println!(
        "\ninitial  cost {:>12.0}   ({:.1} MB)",
        report.initial_cost,
        report.initial_size / 1e6
    );
    println!(
        "optimal  cost {:>12.0}   ({:.1} MB, {:+.1}%)",
        report.optimal_cost,
        report.optimal_size / 1e6,
        report.optimal_improvement_pct()
    );
    match &report.best {
        Some(best) => {
            println!(
                "best     cost {:>12.0}   ({:.1} MB, {:+.1}%)\n",
                best.cost,
                best.size_bytes / 1e6,
                report.best_improvement_pct()
            );
            println!("recommended physical design:");
            for index in best.config.indexes() {
                if index.table.is_view() {
                    continue;
                }
                let t = db.table(index.table);
                let cols: Vec<&str> = index
                    .key
                    .iter()
                    .map(|c| t.column(c.ordinal).name.as_str())
                    .collect();
                let suffix: Vec<&str> = index
                    .suffix
                    .iter()
                    .map(|c| t.column(c.ordinal).name.as_str())
                    .collect();
                let kind = if index.clustered { "CLUSTERED " } else { "" };
                if suffix.is_empty() {
                    println!("  CREATE {kind}INDEX ON {} ({})", t.name, cols.join(", "));
                } else {
                    println!(
                        "  CREATE {kind}INDEX ON {} ({}) INCLUDE ({})",
                        t.name,
                        cols.join(", "),
                        suffix.join(", ")
                    );
                }
            }
            for view in best.config.views() {
                println!("  CREATE MATERIALIZED VIEW AS {}", view.def.to_sql(&db));
            }
        }
        None => println!("no configuration fits the budget"),
    }
    println!(
        "\n{} iterations, {} optimizer calls, {:?}",
        report.iterations, report.optimizer_calls, report.elapsed
    );
    println!(
        "{}",
        cache_line(report.cache_hits, report.cache_misses, o.no_cache)
    );
    if let (Some(path), Some(tracer)) = (&o.trace, tracer.as_ref()) {
        std::fs::write(path, tracer.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
        println!("trace: {} events -> {path}", tracer.len());
    }
    if o.validate_bounds {
        println!(
            "bound oracle: {} checks, {} violations",
            report.bound_checks,
            report.bound_violations.len()
        );
        if let Some(v) = report.bound_violations.first() {
            return Err(format!(
                "\u{a7}3.3.2 bound violated at iteration {} ({}): bound {:.1} < actual {:.1}",
                v.iteration, v.transformation, v.bound, v.actual
            ));
        }
    }
    Ok(())
}

/// Render the cost-cache counter line of a report.
fn cache_line(hits: u64, misses: u64, disabled: bool) -> String {
    if disabled {
        return "cost cache disabled".to_string();
    }
    let total = hits + misses;
    let rate = if total == 0 {
        0.0
    } else {
        100.0 * hits as f64 / total as f64
    };
    format!("cost cache: {hits} hits / {misses} misses ({rate:.1}% hit rate)")
}

fn cmd_explain(o: &CliOptions) -> Result<(), String> {
    let db = load_database(o)?;
    let sql = o.sql.as_deref().ok_or("explain needs --sql")?;
    let stmt = parse_statement(sql).map_err(|e| e.to_string())?;
    let bound = Binder::new(&db).bind(&stmt).map_err(|e| e.to_string())?;
    let query = bound.as_select().ok_or("explain supports SELECT only")?;
    let optimizer = Optimizer::new(&db);

    let config = if o.optimal {
        let w = Workload::bind(&db, std::slice::from_ref(&stmt)).map_err(|e| e.to_string())?;
        let (c, _) = gather_optimal_configuration(&db, &w, !o.indexes_only);
        c
    } else {
        Configuration::base(&db)
    };
    let plan = optimizer.optimize(&config, query);
    println!(
        "cost {:.1}, rows {:.0}\n{}",
        plan.cost,
        plan.rows,
        plan.explain()
    );
    Ok(())
}

fn cmd_compare(o: &CliOptions) -> Result<(), String> {
    let db = load_database(o)?;
    let spec = load_workload(o, &db)?;
    let workload =
        Workload::bind(&db, &spec.statements).map_err(|e| format!("binding workload: {e}"))?;
    let ptt = tune(
        &db,
        &workload,
        &TunerOptions {
            space_budget: o.budget,
            max_iterations: o.iterations,
            with_views: !o.indexes_only,
            threads: o.threads,
            cost_cache: !o.no_cache,
            ..TunerOptions::default()
        },
    );
    let ctt = BaselineAdvisor::new(
        &db,
        BaselineOptions {
            space_budget: o.budget,
            with_views: !o.indexes_only,
            threads: o.threads,
            cost_cache: !o.no_cache,
            ..BaselineOptions::default()
        },
    )
    .tune(&workload);
    println!("workload `{}` ({} statements)", spec.name, workload.len());
    println!(
        "PTT (relaxation): {:+.1}% improvement, {} optimizer calls, {:?}",
        ptt.best_improvement_pct(),
        ptt.optimizer_calls,
        ptt.elapsed
    );
    println!(
        "    {}",
        cache_line(ptt.cache_hits, ptt.cache_misses, o.no_cache)
    );
    println!(
        "CTT (bottom-up) : {:+.1}% improvement, {} optimizer calls, {:?}",
        ctt.improvement_pct(),
        ctt.optimizer_calls,
        ctt.elapsed
    );
    println!(
        "    {}",
        cache_line(ctt.cache_hits, ctt.cache_misses, o.no_cache)
    );
    println!(
        "dImprovement = {:+.1} points",
        ptt.best_improvement_pct() - ctt.improvement_pct()
    );
    Ok(())
}

fn cmd_corpus() -> Result<(), String> {
    println!("built-in benchmark databases:\n");
    for (name, db) in [
        ("tpch (SF 0.1)", tpch::tpch_database(0.1)),
        ("ds1", star_database(&StarParams::ds1())),
        ("ds2", star_database(&StarParams::ds2())),
        ("bench", bench_database(&BenchParams::default())),
    ] {
        println!(
            "  {name:<14} {:>2} tables, {:>8.2} GB",
            db.tables().len(),
            db.total_heap_bytes() / 1e9
        );
        for t in db.tables() {
            println!(
                "      {:<12} {:>12.0} rows x {:>3} cols",
                t.name,
                t.rows,
                t.columns.len()
            );
        }
    }
    Ok(())
}
