//! # pdtune — relaxation-based automatic physical database tuning
//!
//! A Rust reproduction of Bruno & Chaudhuri, *"Automatic Physical
//! Database Tuning: A Relaxation-based Approach"* (SIGMOD 2005).
//!
//! This facade crate re-exports the workspace members under stable
//! names. Most users want:
//!
//! * [`workloads`] to obtain a database + workload,
//! * [`tuner`] to run the relaxation-based tuning session (PTT),
//! * [`baseline`] for the bottom-up advisor it is compared against (CTT).
//!
//! ```no_run
//! use pdtune::prelude::*;
//!
//! let db = pdtune::workloads::tpch::tpch_database(0.01);
//! let spec = pdtune::workloads::tpch::tpch_workload();
//! let workload = Workload::bind(&db, &spec.statements).unwrap();
//! let opts = TunerOptions {
//!     space_budget: Some(64.0 * 1024.0 * 1024.0),
//!     ..TunerOptions::default()
//! };
//! let report = tune(&db, &workload, &opts);
//! assert!(report.best.is_some());
//! ```

pub use pdt_baseline as baseline;
pub use pdt_catalog as catalog;
pub use pdt_expr as expr;
pub use pdt_opt as opt;
pub use pdt_physical as physical;
pub use pdt_serve as serve;
pub use pdt_sql as sql;
pub use pdt_trace as trace;
pub use pdt_tuner as tuner;
pub use pdt_workloads as workloads;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use pdt_baseline::{BaselineAdvisor, BaselineOptions};
    pub use pdt_catalog::{Catalog, Database};
    pub use pdt_opt::{Optimizer, OptimizerOptions};
    pub use pdt_physical::{Configuration, Index, MaterializedView};
    pub use pdt_sql::parse_statement;
    pub use pdt_trace::Tracer;
    pub use pdt_tuner::{
        tune, tune_session, tune_traced, BoundViolation, Checkpoint, FaultPlan, SessionCtl,
        StopReason, StopToken, TuneError, TunerOptions, TuningReport, Workload,
    };
}
